"""Delta-maintained Token Blocking index for online resolution.

Batch Token Blocking (Section 7's workflow) rebuilds every block from
scratch; an online resolver cannot afford that per arrival.
:class:`IncrementalTokenIndex` maintains the same schema-agnostic
substrate - token postings, block qualification, per-profile block
counts - with O(tokens-of-profile) work per ingested profile:

* a token *qualifies* as a block exactly when batch Token Blocking would
  emit it: at least two profiles (Dirty ER) or at least one profile per
  source (Clean-clean ER).  Qualification is monotone under ingestion
  (profiles are never removed), so transitions are detected in O(1) per
  token and per-profile block counts |B_i| are maintained by pure deltas;
* :meth:`candidate_pairs` enumerates, for a freshly ingested batch, every
  comparison that involves a new profile, together with the shared
  qualifying tokens in deterministic (alphabetical) order - the exact
  accumulation order the batch Blocking Graph uses, which is what makes
  incremental weights bit-identical to batch weights;
* :meth:`snapshot_blocks` materializes the current state as a regular
  :class:`~repro.blocking.base.BlockCollection`, byte-identical to what
  ``token_blocking_workflow(store, purge_ratio=None, filter_ratio=None)``
  would build over the same profiles - the bridge back to every batch
  component (full re-ranking, evaluation, the CSR engine).

Block Purging is supported as a *query-time* bound (``purge_limit``):
over-populated stop-word tokens contribute no candidates, evaluated
against the current corpus size.  Block Filtering is a batch-global
re-ranking of each profile's blocks and intentionally has no incremental
counterpart (see docs/incremental.md).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.blocking.base import Block, BlockCollection
from repro.core.profiles import EntityProfile, ERType, ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer


def check_rebuild_threshold(value: float) -> float:
    """Validate a delta-structure rebuild threshold (shared rule).

    Used by every consumer of the knob - the pipeline config, the numpy
    delta scorer and the incremental Neighbor List - so the accepted
    range and the error message cannot drift apart.
    """
    if not 0.0 < value <= 1.0:
        raise ValueError(f"rebuild_threshold must be in (0, 1], got {value!r}")
    return value


class IncrementalTokenIndex:
    """Token postings plus blocking statistics under profile ingestion.

    Parameters
    ----------
    store:
        The (usually mutable) profile store; profiles already present are
        indexed immediately.
    tokenizer:
        The schema-agnostic blocking-key tokenizer (shared default).
    """

    __slots__ = (
        "store",
        "tokenizer",
        "postings",
        "generation",
        "_source_counts",
        "_profile_tokens",
        "_block_counts",
        "_blocks",
        "_probe",
    )

    def __init__(
        self, store: ProfileStore, tokenizer: Tokenizer = DEFAULT_TOKENIZER
    ) -> None:
        self.store = store
        self.tokenizer = tokenizer
        #: token -> profile ids, in ingestion (= ascending id) order.
        self.postings: dict[str, list[int]] = {}
        #: Bumped once per mutation batch; consumers cache against it.
        self.generation = 0
        self._source_counts: dict[str, list[int]] = {}
        self._profile_tokens: dict[int, tuple[str, ...]] = {}
        self._block_counts: dict[int, int] = {}
        self._blocks: set[str] = set()
        #: The active probe as (profile_id, source), if any.
        self._probe: tuple[int, int] | None = None
        for profile in store:
            self._index_profile(profile)

    # -- maintenance ----------------------------------------------------------

    def _qualifies(self, token: str) -> bool:
        if self.store.er_type is ERType.CLEAN_CLEAN:
            counts = self._source_counts[token]
            return counts[0] >= 1 and counts[1] >= 1
        return len(self.postings[token]) >= 2

    def _index_profile(self, profile: EntityProfile) -> list[str]:
        """Index one profile; returns the tokens that became blocks."""
        profile_id = profile.profile_id
        tokens = tuple(sorted(self.tokenizer.distinct_profile_tokens(profile)))
        self._profile_tokens[profile_id] = tokens
        source = profile.source
        transitioned: list[str] = []
        for token in tokens:
            posting = self.postings.setdefault(token, [])
            posting.append(profile_id)
            counts = self._source_counts.setdefault(token, [0, 0])
            if source < 2:
                counts[source] += 1
            if token in self._blocks:
                # Already a block: only the newcomer gains a block.
                self._block_counts[profile_id] = (
                    self._block_counts.get(profile_id, 0) + 1
                )
            elif self._qualifies(token):
                # Qualification transition: every member gains a block.
                self._blocks.add(token)
                transitioned.append(token)
                for member in posting:
                    self._block_counts[member] = (
                        self._block_counts.get(member, 0) + 1
                    )
        return transitioned

    def add_profile(self, profile: EntityProfile) -> None:
        """Index one freshly ingested profile (one generation bump)."""
        self.add_profiles([profile])

    def add_profiles(self, profiles: Iterable[EntityProfile]) -> None:
        """Index a batch of freshly ingested profiles (one generation bump)."""
        count = 0
        for profile in profiles:
            self._index_profile(profile)
            count += 1
        if count:
            self.generation += 1

    # -- statistics -----------------------------------------------------------

    def is_block(self, token: str) -> bool:
        """Whether ``token`` currently qualifies as a block."""
        return token in self._blocks

    def block_count(self, purge_limit: float | None = None) -> int:
        """|B| - number of qualifying blocks (optionally under purging)."""
        if purge_limit is None:
            return len(self._blocks)
        return sum(
            1 for token in self._blocks if len(self.postings[token]) <= purge_limit  # repro-analyze: ignore[determinism] pure count, order-independent
        )

    def blocks_of_count(
        self, profile_id: int, purge_limit: float | None = None
    ) -> int:
        """|B_i| - number of qualifying blocks containing the profile."""
        if purge_limit is None:
            return self._block_counts.get(profile_id, 0)
        return sum(
            1
            for token in self._profile_tokens.get(profile_id, ())
            if token in self._blocks and len(self.postings[token]) <= purge_limit
        )

    def cardinality(self, token: str) -> int:
        """||b|| - comparisons entailed by the token's current block."""
        if self.store.er_type is ERType.CLEAN_CLEAN:
            counts = self._source_counts[token]
            return counts[0] * counts[1]
        n = len(self.postings[token])
        return n * (n - 1) // 2

    def tokens_of(self, profile_id: int) -> tuple[str, ...]:
        """The profile's distinct blocking keys, alphabetically."""
        return self._profile_tokens.get(profile_id, ())

    def indexed_profiles(self) -> list[int]:
        """Ids of all indexed profiles, in ingestion order."""
        return list(self._profile_tokens)

    def source_of(self, profile_id: int) -> int:
        """Source id of a profile - stored or the active probe."""
        if self._probe is not None and profile_id == self._probe[0]:
            return self._probe[1]
        return self.store.source_of(profile_id)

    def valid_pair(self, i: int, j: int) -> bool:
        """Task validity of a pair of *indexed* profiles.

        Unlike ``store.valid_comparison`` this also covers an active
        probe profile, which is indexed but not stored.
        """
        if i == j:
            return False
        if self.store.er_type is not ERType.CLEAN_CLEAN:
            return True
        return self.source_of(i) != self.source_of(j)

    def pair_tokens(
        self, i: int, j: int, purge_limit: float | None = None
    ) -> list[str]:
        """Qualifying tokens shared by two indexed profiles, alphabetically."""
        a, b = self.tokens_of(i), self.tokens_of(j)
        if len(b) < len(a):
            a, b = b, a
        b_set = set(b)
        return [
            token
            for token in a
            if token in b_set
            and token in self._blocks
            and (purge_limit is None or len(self.postings[token]) <= purge_limit)
        ]

    # -- candidate generation -------------------------------------------------

    def _pairs_for(
        self,
        profile_id: int,
        include,
        purge_limit: float | None,
    ) -> Iterator[tuple[int, int, list[str]]]:
        """One profile's candidate comparisons, shared tokens alphabetical.

        The single accumulation loop behind :meth:`candidate_pairs` and
        :meth:`probe_pairs` - the two must stay bit-identical for the
        ingest/probe parity contract, so only the neighbor predicate
        (``include``) differs.  Pairs are yielded in first-encounter
        order, each owned by its smaller id.
        """
        shared: dict[int, list[str]] = {}
        order: list[int] = []
        for token in self._profile_tokens.get(profile_id, ()):
            if token not in self._blocks:
                continue
            posting = self.postings[token]
            if purge_limit is not None and len(posting) > purge_limit:
                continue
            for neighbor in posting:
                if neighbor == profile_id or not include(neighbor):
                    continue
                tokens = shared.get(neighbor)
                if tokens is None:
                    shared[neighbor] = [token]
                    order.append(neighbor)
                else:
                    tokens.append(token)
        for neighbor in order:
            i, j = (
                (neighbor, profile_id)
                if neighbor < profile_id
                else (profile_id, neighbor)
            )
            yield i, j, shared[neighbor]

    def candidate_pairs(
        self,
        new_ids: Sequence[int],
        purge_limit: float | None = None,
    ) -> Iterator[tuple[int, int, list[str]]]:
        """Comparisons introduced by a freshly ingested batch.

        Yields ``(i, j, shared_tokens)`` for every valid comparison that
        involves at least one profile of ``new_ids``, exactly once, with
        the shared qualifying tokens in alphabetical order.  Pairs whose
        profiles were both present before the batch are *not* yielded -
        their comparison was emitted when the later of the two arrived.
        """
        new_set = set(new_ids)
        store = self.store
        for profile_id in sorted(new_set):

            def include(neighbor: int, profile_id: int = profile_id) -> bool:
                # A pair of two new profiles is owned by the larger id,
                # so it is yielded exactly once.
                if neighbor in new_set and neighbor > profile_id:
                    return False
                return store.valid_comparison(profile_id, neighbor)

            yield from self._pairs_for(profile_id, include, purge_limit)

    # -- read-only probes -----------------------------------------------------

    def probe_enter(self, profile: EntityProfile) -> list[str]:
        """Temporarily index a probe profile (exact as-if-ingested stats).

        The probe must carry the next dense id (``len(store)``) so its
        posting entries land at the end of every touched list, which is
        what makes :meth:`probe_exit` an exact rollback.  Returns the
        journal (tokens that became blocks) to hand back to
        :meth:`probe_exit`.

        ``generation`` is deliberately *not* bumped: a probe leaves the
        net state untouched, and bumping would make generation-keyed
        consumers (the streaming emitter, the numpy arrays) treat
        unchanged state as stale.  Statistics caches that may be read
        *during* the probe must be invalidated explicitly (the resolver
        handles its weighter).
        """
        if profile.profile_id in self._profile_tokens:
            raise ValueError(
                f"probe id {profile.profile_id} is already indexed"
            )
        if self._probe is not None:  # pragma: no cover - misuse guard
            raise RuntimeError("a probe is already active")
        transitioned = self._index_profile(profile)
        self._probe = (profile.profile_id, profile.source)
        return transitioned

    def probe_exit(self, profile: EntityProfile, journal: list[str]) -> None:
        """Roll back :meth:`probe_enter` exactly (postings, counts, blocks)."""
        profile_id = profile.profile_id
        tokens = self._profile_tokens.pop(profile_id)
        self._block_counts.pop(profile_id, None)
        for token in tokens:
            posting = self.postings[token]
            if posting[-1] != profile_id:  # pragma: no cover - misuse guard
                raise RuntimeError("probe_exit out of order")
            posting.pop()
            counts = self._source_counts[token]
            if profile.source < 2:
                counts[profile.source] -= 1
            if not posting:
                del self.postings[token]
                del self._source_counts[token]
        for token in journal:
            self._blocks.discard(token)
            for member in self.postings.get(token, ()):
                remaining = self._block_counts.get(member, 0) - 1
                if remaining <= 0:
                    self._block_counts.pop(member, None)
                else:
                    self._block_counts[member] = remaining
        self._probe = None

    def probe_pairs(
        self,
        profile_id: int,
        source: int,
        purge_limit: float | None = None,
    ) -> Iterator[tuple[int, int, list[str]]]:
        """Candidate comparisons of one (possibly probe) profile.

        Like :meth:`candidate_pairs` for a single id, but comparison
        validity is checked against the given ``source`` instead of the
        store (the probe may not be stored).
        """
        clean_clean = self.store.er_type is ERType.CLEAN_CLEAN

        def include(neighbor: int) -> bool:
            return not (
                clean_clean and self.store.source_of(neighbor) == source
            )

        yield from self._pairs_for(profile_id, include, purge_limit)

    # -- snapshot / restore ---------------------------------------------------

    def postings_csr(self) -> tuple[list[str], list[int], list[int]]:
        """The postings as CSR: sorted tokens, offsets, flat profile ids.

        The snapshot export (see :mod:`repro.service.snapshot`): tokens
        alphabetically, each token's posting ids in ingestion order -
        ``flat[indptr[t]:indptr[t + 1]]`` is token ``t``'s posting.
        Everything else the index maintains (qualification, block
        counts, source counts) is derivable from this plus the store,
        which is what :meth:`restore` does.
        """
        tokens = sorted(self.postings)
        indptr = [0]
        flat: list[int] = []
        for token in tokens:
            flat.extend(self.postings[token])
            indptr.append(len(flat))
        return tokens, indptr, flat

    @classmethod
    def restore(
        cls,
        store: ProfileStore,
        tokens: Sequence[str],
        indptr: Sequence[int],
        flat_ids: Sequence[int],
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        generation: int = 0,
    ) -> "IncrementalTokenIndex":
        """Rebuild an index from its CSR snapshot without re-tokenizing.

        The inverse of :meth:`postings_csr` over the same ``store``:
        postings come straight from the arrays, and the derived state -
        per-profile token tuples, source counts, qualification, block
        counts - is recomputed in one pass.  ``tokens`` must be sorted
        (the export order), which makes each profile's accumulated token
        list alphabetical, exactly as :meth:`_index_profile` builds it;
        profile ids inside each posting keep their saved ingestion
        order.  The result is state-identical to the index the snapshot
        was taken from, so a restored session streams bit-identically.
        """
        if len(indptr) != len(tokens) + 1 or (
            len(indptr) > 0 and indptr[-1] != len(flat_ids)
        ):
            raise ValueError(
                f"inconsistent postings CSR: {len(tokens)} tokens, "
                f"{len(indptr)} offsets, {len(flat_ids)} posting entries"
            )
        index = cls.__new__(cls)
        index.store = store
        index.tokenizer = tokenizer
        index.postings = {}
        index.generation = generation
        index._source_counts = {}
        index._profile_tokens = {}
        index._block_counts = {}
        index._blocks = set()
        index._probe = None
        # Every stored profile gets an entry (zero-token ones included),
        # keyed in ingestion order - the invariant _index_profile keeps.
        profile_tokens: dict[int, list[str]] = {
            profile.profile_id: [] for profile in store
        }
        previous = None
        for position, token in enumerate(tokens):
            if previous is not None and not token > previous:
                raise ValueError(
                    f"snapshot tokens must be strictly sorted; "
                    f"{token!r} follows {previous!r}"
                )
            previous = token
            ids = [int(i) for i in flat_ids[indptr[position] : indptr[position + 1]]]
            index.postings[token] = ids
            counts = [0, 0]
            for profile_id in ids:
                try:
                    profile_tokens[profile_id].append(token)
                except KeyError:
                    raise ValueError(
                        f"posting of {token!r} references profile "
                        f"{profile_id}, which the store does not hold"
                    ) from None
                source = store.source_of(profile_id)
                if source < 2:
                    counts[source] += 1
            index._source_counts[token] = counts
            if index._qualifies(token):
                index._blocks.add(token)
                for profile_id in ids:
                    index._block_counts[profile_id] = (
                        index._block_counts.get(profile_id, 0) + 1
                    )
        index._profile_tokens = {
            profile_id: tuple(accumulated)
            for profile_id, accumulated in profile_tokens.items()
        }
        return index

    # -- bridge back to the batch substrate -----------------------------------

    def snapshot_blocks(
        self, purge_limit: float | None = None
    ) -> BlockCollection:
        """The current state as a batch :class:`BlockCollection`.

        Blocks are the qualifying tokens in alphabetical order with
        store-ascending member ids - byte-identical to
        ``token_blocking_workflow(store, purge_ratio=None,
        filter_ratio=None)`` over the same profiles, which is what the
        incremental/batch parity property rests on.
        """
        blocks = []
        for token in sorted(self._blocks):
            ids = self.postings[token]
            if purge_limit is not None and len(ids) > purge_limit:
                continue
            blocks.append(Block(token, ids, self.store))
        collection = BlockCollection(blocks, self.store)
        collection.assign_block_ids()
        return collection

    def __len__(self) -> int:
        """Number of distinct tokens seen (qualifying or not)."""
        return len(self.postings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncrementalTokenIndex({len(self.postings)} tokens, "
            f"{len(self._blocks)} blocks, generation={self.generation})"
        )

"""The Profile Index: profile id -> sorted ids of the blocks containing it.

PBS and PPS (Section 5.2) never materialize the Blocking Graph; instead
they derive edge weights and repeated-comparison checks from this inverted
index.  Two properties of the index matter (both from the paper):

* block ids reflect the *scheduled* order (ascending cardinality), so the
  id of the least common block of two profiles tells where the pair is
  first encountered - the **LeCoBI** condition;
* each profile's block-id list is sorted ascending, so common blocks are
  found by a linear merge of two sorted lists.
"""

from __future__ import annotations

from typing import Sequence

from repro.blocking.base import BlockCollection


def build_profile_index(collection: BlockCollection, backend: str = "python"):
    """Backend seam: a Profile Index for ``collection``.

    ``backend="python"`` returns the reference :class:`ProfileIndex`;
    ``backend="numpy"`` returns the API-compatible CSR
    :class:`repro.engine.csr.ArrayProfileIndex` (requires the
    ``repro[speed]`` extra).
    """
    from repro.engine import get_backend

    return get_backend(backend).require().profile_index(collection)


class ProfileIndex:
    """Inverted index over a scheduled block collection.

    Parameters
    ----------
    collection:
        Blocks whose ``block_id`` fields are their positions in the
        processing order (see :func:`repro.blocking.block_scheduling`).
        If ids were never assigned, positional ids are stamped here.
    """

    __slots__ = ("collection", "_blocks_of", "block_cardinalities", "store")

    def __init__(self, collection: BlockCollection) -> None:
        if any(block.block_id < 0 for block in collection.blocks):
            collection.assign_block_ids()
        self.collection = collection
        self.store = collection.store
        er_type = collection.store.er_type
        self.block_cardinalities: list[int] = [
            block.cardinality(er_type) for block in collection.blocks
        ]
        blocks_of: dict[int, list[int]] = {}
        for block in collection.blocks:
            for profile_id in block.ids:
                blocks_of.setdefault(profile_id, []).append(block.block_id)
        for ids in blocks_of.values():
            ids.sort()
        self._blocks_of = blocks_of

    # -- lookups -----------------------------------------------------------

    def blocks_of(self, profile_id: int) -> Sequence[int]:
        """Sorted ids of the blocks containing ``profile_id`` (may be empty)."""
        return self._blocks_of.get(profile_id, ())

    def block_count(self) -> int:
        """|B| - number of blocks in the indexed collection."""
        return len(self.collection.blocks)

    def indexed_profiles(self) -> list[int]:
        """Profile ids that appear in at least one block."""
        return sorted(self._blocks_of)

    # -- merge-based pair operations (Section 5.2.1) -------------------------

    def common_blocks(self, i: int, j: int) -> list[int]:
        """Ids of the blocks shared by profiles ``i`` and ``j`` (sorted)."""
        a, b = self.blocks_of(i), self.blocks_of(j)
        out: list[int] = []
        ai = bi = 0
        while ai < len(a) and bi < len(b):
            if a[ai] == b[bi]:
                out.append(a[ai])
                ai += 1
                bi += 1
            elif a[ai] < b[bi]:
                ai += 1
            else:
                bi += 1
        return out

    def least_common_block(self, i: int, j: int) -> int | None:
        """The smallest shared block id, or None if the pair shares none.

        The merge stops at the first hit, which is what makes the LeCoBI
        check cheap: on average far fewer steps than a full merge.
        """
        a, b = self.blocks_of(i), self.blocks_of(j)
        ai = bi = 0
        while ai < len(a) and bi < len(b):
            if a[ai] == b[bi]:
                return a[ai]
            if a[ai] < b[bi]:
                ai += 1
            else:
                bi += 1
        return None

    def is_first_encounter(self, i: int, j: int, block_id: int) -> bool:
        """The LeCoBI condition: is ``block_id`` where (i, j) first co-occur?

        True iff the least common block id of the pair equals ``block_id``;
        a False answer means the comparison was already emitted in an
        earlier (smaller-id) block and is repeated here.
        """
        least = self.least_common_block(i, j)
        return least == block_id

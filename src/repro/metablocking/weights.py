"""Blocking Graph edge-weighting schemes from Meta-blocking [12, 20].

Every scheme estimates the matching likelihood of a pair (p_i, p_j)
exclusively from the blocks the two profiles share (the equality
principle).  All schemes decompose into

* a per-common-block ``contribution`` (so PBS/PPS can accumulate weights
  while streaming over a block's or a profile's neighborhood), and
* a ``finalize`` step normalizing the accumulated raw value.

Implemented schemes:

======  ======================================================================
ARCS    sum over common blocks of 1/||b|| (the paper's default, Section 3.2)
CBS     number of common blocks |B_i ^ B_j|
ECBS    CBS * log(|B|/|B_i|) * log(|B|/|B_j|)
JS      Jaccard of block lists: CBS / (|B_i| + |B_j| - CBS)
EJS     JS * log(|E|/degree_i) * log(|E|/degree_j)  (degrees precomputed)
======  ======================================================================
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.metablocking.profile_index import ProfileIndex
from repro.registry import weighting_schemes


class WeightingScheme(ABC):
    """Edge weighting over a Profile Index."""

    name: str = "abstract"

    def __init__(self, index: ProfileIndex) -> None:
        self.index = index

    # -- streaming interface (used inside the progressive methods) ----------

    @abstractmethod
    def contribution(self, block_id: int) -> float:
        """Weight contributed by one shared block."""

    def finalize(self, i: int, j: int, raw: float) -> float:
        """Normalize an accumulated raw weight for the pair (i, j)."""
        return raw

    # -- direct interface (used by the graph view and the tests) ------------

    def weight(self, i: int, j: int) -> float:
        """Edge weight of the pair, 0.0 when no block is shared."""
        common = self.index.common_blocks(i, j)
        if not common:
            return 0.0
        raw = sum(self.contribution(block_id) for block_id in common)
        return self.finalize(i, j, raw)


class ARCS(WeightingScheme):
    """Aggregate Reciprocal Comparisons Scheme: sum of 1/||b_k||.

    Smaller (more distinctive) shared blocks score higher; this is the
    scheme the paper fixes for all equality-based experiments.
    """

    name = "ARCS"

    def contribution(self, block_id: int) -> float:
        cardinality = self.index.block_cardinalities[block_id]
        if cardinality <= 0:
            return 0.0
        return 1.0 / cardinality


class CBS(WeightingScheme):
    """Common Blocks Scheme: the plain count of shared blocks."""

    name = "CBS"

    def contribution(self, block_id: int) -> float:
        return 1.0


class ECBS(CBS):
    """Enhanced CBS: discounts profiles that appear in many blocks."""

    name = "ECBS"

    def finalize(self, i: int, j: int, raw: float) -> float:
        total = self.index.block_count()
        bi = len(self.index.blocks_of(i))
        bj = len(self.index.blocks_of(j))
        if not bi or not bj or total == 0:
            return 0.0
        return raw * math.log(total / bi) * math.log(total / bj)


class JS(CBS):
    """Jaccard Scheme over the two profiles' block-id lists."""

    name = "JS"

    def finalize(self, i: int, j: int, raw: float) -> float:
        bi = len(self.index.blocks_of(i))
        bj = len(self.index.blocks_of(j))
        union = bi + bj - raw
        if union <= 0:
            return 0.0
        return raw / union


class EJS(JS):
    """Enhanced JS: JS discounted by node degrees in the Blocking Graph.

    Degrees (distinct co-occurring profiles per node) and the total edge
    count |E| are computed once, lazily, with a full pass over the blocks -
    the same pre-pass any streaming EJS implementation needs.
    """

    name = "EJS"

    def __init__(self, index: ProfileIndex) -> None:
        super().__init__(index)
        self._degrees: dict[int, int] | None = None
        self._edge_count: int = 0

    def _ensure_degrees(self) -> None:
        if self._degrees is not None:
            return
        degrees: dict[int, int] = {}
        edges = 0
        er_type = self.index.store.er_type
        for block in self.index.collection.blocks:
            for comparison in block.comparisons(er_type):
                if not self.index.is_first_encounter(
                    comparison.i, comparison.j, block.block_id
                ):
                    continue
                degrees[comparison.i] = degrees.get(comparison.i, 0) + 1
                degrees[comparison.j] = degrees.get(comparison.j, 0) + 1
                edges += 1
        self._degrees = degrees
        self._edge_count = edges

    def finalize(self, i: int, j: int, raw: float) -> float:
        jaccard = super().finalize(i, j, raw)
        if jaccard == 0.0:
            return 0.0
        self._ensure_degrees()
        assert self._degrees is not None
        di = self._degrees.get(i, 0)
        dj = self._degrees.get(j, 0)
        if not di or not dj or not self._edge_count:
            return 0.0
        return (
            jaccard
            * math.log(self._edge_count / di)
            * math.log(self._edge_count / dj)
        )


for _scheme in (ARCS, CBS, ECBS, JS, EJS):
    weighting_schemes.register(_scheme.name, _scheme)
del _scheme


def available_schemes() -> list[str]:
    """Names of all registered weighting schemes."""
    return weighting_schemes.names()


def make_scheme(name: str, index: ProfileIndex) -> WeightingScheme:
    """Instantiate a scheme by name (spelling-insensitive)."""
    return weighting_schemes.build(name, index)

"""Meta-blocking substrate: Profile Index, Blocking Graph, edge weighting."""

from repro.metablocking.blocking_graph import (
    build_blocking_graph,
    edge_count,
    iter_edges,
)
from repro.metablocking.profile_index import ProfileIndex, build_profile_index
from repro.metablocking.pruning import (
    available_pruning_algorithms,
    cardinality_edge_pruning,
    cardinality_node_pruning,
    prune,
    reciprocal_cardinality_node_pruning,
    reciprocal_weighted_node_pruning,
    weighted_edge_pruning,
    weighted_node_pruning,
)
from repro.metablocking.weights import (
    ARCS,
    CBS,
    ECBS,
    EJS,
    JS,
    WeightingScheme,
    available_schemes,
    make_scheme,
)

__all__ = [
    "build_blocking_graph",
    "edge_count",
    "iter_edges",
    "ProfileIndex",
    "build_profile_index",
    "available_pruning_algorithms",
    "cardinality_edge_pruning",
    "cardinality_node_pruning",
    "prune",
    "reciprocal_cardinality_node_pruning",
    "reciprocal_weighted_node_pruning",
    "weighted_edge_pruning",
    "weighted_node_pruning",
    "ARCS",
    "CBS",
    "ECBS",
    "EJS",
    "JS",
    "WeightingScheme",
    "available_schemes",
    "make_scheme",
]

"""The Blocking Graph (Section 3.2) and iteration over its edges.

The Blocking Graph G_B(V_B, E_B) has a node per profile and a weighted edge
per distinct intra-block comparison.  The paper stresses that materializing
the full edge list is impractical at scale, so the progressive methods only
ever *stream* edges via the Profile Index.  This module provides:

* :func:`iter_edges` - a deduplicated, weighted edge stream (the canonical
  way the equality-based methods see the graph);
* :func:`build_blocking_graph` - an explicit ``networkx`` view for tests,
  notebooks and small-scale inspection (e.g. the paper's Figure 3c).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.blocking.base import BlockCollection
from repro.blocking.scheduling import block_scheduling
from repro.core.comparisons import Comparison
from repro.metablocking.profile_index import ProfileIndex
from repro.metablocking.weights import WeightingScheme, make_scheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx


def iter_edges(
    index: ProfileIndex,
    scheme: WeightingScheme,
) -> Iterator[Comparison]:
    """Every distinct blocking-graph edge, weighted, in block order.

    Deduplication uses the LeCoBI condition, so each pair is yielded
    exactly once - at its first co-occurrence.
    """
    er_type = index.store.er_type
    for block in index.collection.blocks:
        for comparison in block.comparisons(er_type):
            if not index.is_first_encounter(
                comparison.i, comparison.j, block.block_id
            ):
                continue
            yield Comparison(
                comparison.i,
                comparison.j,
                scheme.weight(comparison.i, comparison.j),
            )


def build_blocking_graph(
    blocks: BlockCollection,
    scheme_name: str = "ARCS",
    schedule: bool = True,
) -> "networkx.Graph":
    """Materialize the Blocking Graph as a ``networkx.Graph``.

    Intended for small inputs (tests, examples); the progressive methods
    never call this.  Nodes are profile ids; edge attribute ``weight``
    holds the scheme's score.
    """
    import networkx

    if schedule:
        blocks = block_scheduling(blocks)
    index = ProfileIndex(blocks)
    scheme = make_scheme(scheme_name, index)
    graph = networkx.Graph()
    graph.add_nodes_from(p.profile_id for p in blocks.store)
    for edge in iter_edges(index, scheme):
        graph.add_edge(edge.i, edge.j, weight=edge.weight)
    return graph


def edge_count(index: ProfileIndex) -> int:
    """|E_B| - number of distinct comparisons in the block collection."""
    er_type = index.store.er_type
    count = 0
    for block in index.collection.blocks:
        for comparison in block.comparisons(er_type):
            if index.is_first_encounter(comparison.i, comparison.j, block.block_id):
                count += 1
    return count

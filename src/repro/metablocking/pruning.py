"""Batch Meta-blocking pruning algorithms [12] (extension).

The paper builds its progressive methods *on top of* the Blocking Graph
machinery of batch Meta-blocking; the design-space literature
(Maciejewski & Papadakis et al.) shows that the pruning schemes of batch
Meta-blocking dominate the progressiveness frontier when combined with
ranked emission.  This module implements the four classic schemes plus
the two reciprocal node-pruning variants:

* **WEP** (Weighted Edge Pruning) - keep edges with weight >= the global
  mean edge weight;
* **CEP** (Cardinality Edge Pruning) - keep the K globally best edges,
  K = floor(sum of block sizes / 2);
* **WNP** (Weighted Node Pruning) - per node, keep edges >= the local mean
  of its neighborhood; an edge survives if either endpoint keeps it;
* **CNP** (Cardinality Node Pruning) - per node, keep the k best edges,
  k = ceil(sum of block sizes / |P|); an edge survives if either endpoint
  keeps it;
* **RWNP** / **RCNP** (Reciprocal WNP / CNP) - as WNP/CNP, but an edge
  survives only if *both* endpoints keep it (higher precision, lower
  recall - the other end of the design space).

All six return the retained comparisons (deduplicated, weighted, ranked
by ``(-weight, i, j)``), i.e. the restructured block collection B' seen
as one comparison per block.

Accumulation orders are part of the contract: the global WEP mean sums
edge weights in ascending canonical ``(i, j)`` order, and a node's WNP
threshold sums its incident edge weights in ascending neighbor order -
both sequentially, left to right.  The vectorized
(:mod:`repro.engine.pruning`) and sharded
(:mod:`repro.parallel.pruning`) kernels reproduce exactly these sums
(``np.cumsum``/``np.bincount`` accumulate sequentially), which is what
makes the three backends *bit-identical*, not approximately equal.

:func:`prune` is the backend-dispatching entry point the pipeline's
``.meta(pruning=...)`` stage consumes; the per-algorithm functions
remain the reference implementations.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable

from repro.blocking.base import BlockCollection
from repro.blocking.scheduling import block_scheduling
from repro.core.comparisons import Comparison
from repro.metablocking.blocking_graph import iter_edges
from repro.metablocking.profile_index import ProfileIndex
from repro.metablocking.weights import make_scheme
from repro.registry import pruning_algorithms

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Backend

#: The system-wide emission total order every retained stream is ranked by.
_EMISSION_KEY = lambda c: (-c.weight, c.i, c.j)  # noqa: E731


def _weighted_edges(
    blocks: BlockCollection, scheme_name: str
) -> tuple[list[Comparison], ProfileIndex]:
    """All distinct weighted edges, ascending canonical ``(i, j)``.

    The ascending-pair order is the canonical *accumulation* order of the
    global aggregates (WEP's mean); it matches the row-major order of
    :meth:`repro.engine.weights.ArrayBlockingGraph.edges`.
    """
    scheduled = block_scheduling(blocks)
    index = ProfileIndex(scheduled)
    scheme = make_scheme(scheme_name, index)
    edges = sorted(iter_edges(index, scheme), key=lambda c: c.pair)
    return edges, index


def default_cep_k(blocks: BlockCollection) -> int:
    """The literature's CEP budget: half the profile-block assignments."""
    assignments = sum(block.size for block in blocks.blocks)
    return max(1, assignments // 2)


def default_cnp_k(blocks: BlockCollection) -> int:
    """The literature's CNP budget: average blocks per profile (ceiling)."""
    assignments = sum(block.size for block in blocks.blocks)
    population = max(1, len(blocks.store))
    return max(1, -(-assignments // population))  # ceiling division


def weighted_edge_pruning(
    blocks: BlockCollection, scheme_name: str = "ARCS"
) -> list[Comparison]:
    """WEP: retain edges with weight >= the global mean weight."""
    edges, _ = _weighted_edges(blocks, scheme_name)
    if not edges:
        return []
    total = 0.0
    for edge in edges:  # sequential, ascending (i, j) - the contract order
        total += edge.weight
    mean_weight = total / len(edges)
    kept = [edge for edge in edges if edge.weight >= mean_weight]
    kept.sort(key=_EMISSION_KEY)
    return kept


def cardinality_edge_pruning(
    blocks: BlockCollection,
    scheme_name: str = "ARCS",
    k: int | None = None,
) -> list[Comparison]:
    """CEP: retain the K globally best edges.

    ``k`` defaults to the literature's budget: half the total number of
    profile-block assignments (sum of block sizes / 2).
    """
    edges, _ = _weighted_edges(blocks, scheme_name)
    if k is None:
        k = default_cep_k(blocks)
    best = heapq.nlargest(k, edges, key=lambda c: (c.weight, -c.i, -c.j))
    best.sort(key=_EMISSION_KEY)
    return best


def _neighborhoods(
    edges: list[Comparison],
) -> dict[int, list[Comparison]]:
    """Node -> incident edges, each list in ascending-neighbor order.

    Edges arrive ascending ``(i, j)``, so appending gives every ``i``
    endpoint its list sorted by the other endpoint already; the ``j``
    endpoints need one sort.  Ascending-neighbor order is the canonical
    accumulation order of the WNP thresholds.
    """
    by_node: dict[int, list[Comparison]] = {}
    for edge in edges:
        by_node.setdefault(edge.i, []).append(edge)
        by_node.setdefault(edge.j, []).append(edge)
    for node, incident in by_node.items():
        incident.sort(key=lambda c, node=node: c.j if c.i == node else c.i)
    return by_node


def _node_thresholds(by_node: dict[int, list[Comparison]]) -> dict[int, float]:
    """Per-node local mean, accumulated in ascending-neighbor order."""
    thresholds: dict[int, float] = {}
    for node, incident in by_node.items():
        total = 0.0
        for edge in incident:  # sequential - matches the bincount kernels
            total += edge.weight
        thresholds[node] = total / len(incident)
    return thresholds


def weighted_node_pruning(
    blocks: BlockCollection, scheme_name: str = "ARCS"
) -> list[Comparison]:
    """WNP: an edge survives if it clears either endpoint's local mean."""
    edges, _ = _weighted_edges(blocks, scheme_name)
    thresholds = _node_thresholds(_neighborhoods(edges))
    kept = [
        edge
        for edge in edges
        if edge.weight >= thresholds[edge.i] or edge.weight >= thresholds[edge.j]
    ]
    kept.sort(key=_EMISSION_KEY)
    return kept


def reciprocal_weighted_node_pruning(
    blocks: BlockCollection, scheme_name: str = "ARCS"
) -> list[Comparison]:
    """Reciprocal WNP: an edge survives only if it clears *both*
    endpoints' local means (the design-space literature's
    precision-oriented variant)."""
    edges, _ = _weighted_edges(blocks, scheme_name)
    thresholds = _node_thresholds(_neighborhoods(edges))
    kept = [
        edge
        for edge in edges
        if edge.weight >= thresholds[edge.i] and edge.weight >= thresholds[edge.j]
    ]
    kept.sort(key=_EMISSION_KEY)
    return kept


def _node_topk_survivors(
    by_node: dict[int, list[Comparison]], k: int
) -> dict[tuple[int, int], int]:
    """Pair -> number of endpoints whose local top-k retains it (1 or 2)."""
    votes: dict[tuple[int, int], int] = {}
    for incident in by_node.values():
        top = heapq.nlargest(k, incident, key=lambda c: (c.weight, -c.i, -c.j))
        for edge in top:
            votes[edge.pair] = votes.get(edge.pair, 0) + 1
    return votes


def cardinality_node_pruning(
    blocks: BlockCollection,
    scheme_name: str = "ARCS",
    k: int | None = None,
) -> list[Comparison]:
    """CNP: an edge survives if it is a top-k edge of either endpoint.

    ``k`` defaults to ceil(sum of block sizes / |P|), the average number of
    blocks per profile.
    """
    edges, _ = _weighted_edges(blocks, scheme_name)
    if k is None:
        k = default_cnp_k(blocks)
    votes = _node_topk_survivors(_neighborhoods(edges), k)
    kept = [edge for edge in edges if votes.get(edge.pair, 0) >= 1]
    kept.sort(key=_EMISSION_KEY)
    return kept


def reciprocal_cardinality_node_pruning(
    blocks: BlockCollection,
    scheme_name: str = "ARCS",
    k: int | None = None,
) -> list[Comparison]:
    """Reciprocal CNP: an edge survives only if it is a top-k edge of
    *both* endpoints.  ``k`` defaults as in CNP."""
    edges, _ = _weighted_edges(blocks, scheme_name)
    if k is None:
        k = default_cnp_k(blocks)
    votes = _node_topk_survivors(_neighborhoods(edges), k)
    kept = [edge for edge in edges if votes.get(edge.pair, 0) == 2]
    kept.sort(key=_EMISSION_KEY)
    return kept


# -- registry ----------------------------------------------------------------
#
# Canonical acronyms follow the Meta-blocking literature; `takes_k` marks
# the cardinality-based algorithms (the others reject an explicit k).

_REFERENCE_IMPLEMENTATIONS: tuple[tuple[str, tuple[str, ...], bool, Callable], ...] = (
    ("WEP", ("weighted-edge-pruning",), False, weighted_edge_pruning),
    ("CEP", ("cardinality-edge-pruning",), True, cardinality_edge_pruning),
    ("WNP", ("weighted-node-pruning",), False, weighted_node_pruning),
    ("CNP", ("cardinality-node-pruning",), True, cardinality_node_pruning),
    (
        "RWNP",
        ("reciprocal-wnp", "reciprocal-weighted-node-pruning"),
        False,
        reciprocal_weighted_node_pruning,
    ),
    (
        "RCNP",
        ("reciprocal-cnp", "reciprocal-cardinality-node-pruning"),
        True,
        reciprocal_cardinality_node_pruning,
    ),
)

for _name, _aliases, _takes_k, _fn in _REFERENCE_IMPLEMENTATIONS:
    pruning_algorithms.register(_name, _fn, aliases=_aliases, takes_k=_takes_k)
del _name, _aliases, _takes_k, _fn


#: The six algorithms with vectorized and sharded kernels.
_STOCK_ALGORITHMS = frozenset(
    name for name, _aliases, _takes_k, _fn in _REFERENCE_IMPLEMENTATIONS
)


def available_pruning_algorithms() -> list[str]:
    """Canonical names of all registered pruning algorithms."""
    return pruning_algorithms.names()


def prune(
    blocks: BlockCollection,
    algorithm: str = "WEP",
    scheme_name: str = "ARCS",
    k: int | None = None,
    backend: "str | Backend" = "python",
) -> list[Comparison]:
    """Prune the Blocking Graph of ``blocks``; the backend-seam entry point.

    Dispatches ``algorithm`` (any spelling; see
    :data:`repro.registry.pruning_algorithms`) to the configured
    execution backend: ``"python"`` runs the reference implementation in
    this module, ``"numpy"`` the CSR kernels of
    :mod:`repro.engine.pruning`, ``"numpy-parallel"`` the sharded
    kernels of :mod:`repro.parallel.pruning`.  All three emit the
    *bit-identical* retained stream, ranked by ``(-weight, i, j)``.

    ``k`` overrides the cardinality budget of CEP/CNP/RCNP (the
    weight-based algorithms reject it).
    """
    from repro.engine import get_backend

    entry = pruning_algorithms.entry(algorithm)
    if k is not None and not entry.metadata.get("takes_k", False):
        raise ValueError(
            f"pruning algorithm {entry.name!r} takes no cardinality budget; "
            "k applies to CEP, CNP and RCNP only"
        )
    resolved = get_backend(backend).require()
    if not resolved.vectorized:
        if entry.metadata.get("takes_k", False):
            return entry.factory(blocks, scheme_name, k=k)
        return entry.factory(blocks, scheme_name)

    if entry.name not in _STOCK_ALGORITHMS:
        raise NotImplementedError(
            f"pruning algorithm {entry.name!r} has no numpy kernel; "
            "use backend='python' for custom algorithms "
            f"(vectorized: {sorted(_STOCK_ALGORITHMS)})"
        )

    from repro.engine.topk import iter_comparisons

    scheduled = block_scheduling(blocks)
    index = resolved.profile_index(scheduled)
    graph = resolved.blocking_graph(index, scheme_name)
    if k is None and entry.metadata.get("takes_k", False):
        k = (
            default_cep_k(blocks)
            if entry.name == "CEP"
            else default_cnp_k(blocks)
        )
    return list(iter_comparisons(*resolved.pruned_edges(graph, entry.name, k)))

"""Batch Meta-blocking pruning algorithms [12] (extension).

The paper builds its progressive methods *on top of* the Blocking Graph
machinery of batch Meta-blocking, whose four classic pruning schemes are
implemented here for completeness and for the ablation benches:

* **WEP** (Weighted Edge Pruning) - keep edges with weight >= the global
  mean edge weight;
* **CEP** (Cardinality Edge Pruning) - keep the K globally best edges,
  K = floor(sum of block sizes / 2);
* **WNP** (Weighted Node Pruning) - per node, keep edges >= the local mean
  of its neighborhood; an edge survives if either endpoint keeps it;
* **CNP** (Cardinality Node Pruning) - per node, keep the k best edges,
  k = ceil(sum of block sizes / |P|); an edge survives if either endpoint
  keeps it.

All four return the retained comparisons (deduplicated, weighted), i.e.
the restructured block collection B' seen as one comparison per block.
"""

from __future__ import annotations

import heapq

from repro.blocking.base import BlockCollection
from repro.blocking.scheduling import block_scheduling
from repro.core.comparisons import Comparison
from repro.metablocking.blocking_graph import iter_edges
from repro.metablocking.profile_index import ProfileIndex
from repro.metablocking.weights import make_scheme


def _weighted_edges(
    blocks: BlockCollection, scheme_name: str
) -> tuple[list[Comparison], ProfileIndex]:
    scheduled = block_scheduling(blocks)
    index = ProfileIndex(scheduled)
    scheme = make_scheme(scheme_name, index)
    return list(iter_edges(index, scheme)), index


def weighted_edge_pruning(
    blocks: BlockCollection, scheme_name: str = "ARCS"
) -> list[Comparison]:
    """WEP: retain edges with weight >= the global mean weight."""
    edges, _ = _weighted_edges(blocks, scheme_name)
    if not edges:
        return []
    mean_weight = sum(edge.weight for edge in edges) / len(edges)
    kept = [edge for edge in edges if edge.weight >= mean_weight]
    kept.sort(key=lambda c: (-c.weight, c.i, c.j))
    return kept


def cardinality_edge_pruning(
    blocks: BlockCollection,
    scheme_name: str = "ARCS",
    k: int | None = None,
) -> list[Comparison]:
    """CEP: retain the K globally best edges.

    ``k`` defaults to the literature's budget: half the total number of
    profile-block assignments (sum of block sizes / 2).
    """
    edges, _ = _weighted_edges(blocks, scheme_name)
    if k is None:
        assignments = sum(block.size for block in blocks.blocks)
        k = max(1, assignments // 2)
    best = heapq.nlargest(k, edges, key=lambda c: (c.weight, -c.i, -c.j))
    best.sort(key=lambda c: (-c.weight, c.i, c.j))
    return best


def _neighborhoods(
    edges: list[Comparison],
) -> dict[int, list[Comparison]]:
    by_node: dict[int, list[Comparison]] = {}
    for edge in edges:
        by_node.setdefault(edge.i, []).append(edge)
        by_node.setdefault(edge.j, []).append(edge)
    return by_node


def weighted_node_pruning(
    blocks: BlockCollection, scheme_name: str = "ARCS"
) -> list[Comparison]:
    """WNP: an edge survives if it clears either endpoint's local mean."""
    edges, _ = _weighted_edges(blocks, scheme_name)
    by_node = _neighborhoods(edges)
    thresholds = {
        node: sum(e.weight for e in incident) / len(incident)
        for node, incident in by_node.items()
    }
    kept = [
        edge
        for edge in edges
        if edge.weight >= thresholds[edge.i] or edge.weight >= thresholds[edge.j]
    ]
    kept.sort(key=lambda c: (-c.weight, c.i, c.j))
    return kept


def cardinality_node_pruning(
    blocks: BlockCollection,
    scheme_name: str = "ARCS",
    k: int | None = None,
) -> list[Comparison]:
    """CNP: an edge survives if it is a top-k edge of either endpoint.

    ``k`` defaults to ceil(sum of block sizes / |P|), the average number of
    blocks per profile.
    """
    edges, index = _weighted_edges(blocks, scheme_name)
    if k is None:
        assignments = sum(block.size for block in blocks.blocks)
        population = max(1, len(index.store))
        k = max(1, -(-assignments // population))  # ceiling division
    by_node = _neighborhoods(edges)
    survivors: set[tuple[int, int]] = set()
    for incident in by_node.values():
        top = heapq.nlargest(k, incident, key=lambda c: (c.weight, -c.i, -c.j))
        survivors.update(edge.pair for edge in top)
    kept = [edge for edge in edges if edge.pair in survivors]
    kept.sort(key=lambda c: (-c.weight, c.i, c.j))
    return kept

"""Typed contracts for the backend seam.

The parity invariant - ``python``, ``numpy`` and ``numpy-parallel``
emit *bit-identical* comparison streams - rests on every backend
implementing the same structural seam.  This module states that seam
once, as :class:`typing.Protocol` types, so two independent tools can
enforce it:

* ``mypy --strict`` checks the conformance assertions in
  :mod:`repro.engine` and :mod:`repro.parallel.backend` (a backend that
  drops or mistypes a seam method fails type checking);
* the ``backend-contract`` rule of ``tools/repro_analyze`` checks the
  *live registry* (``repro.registry.backends``), so a backend
  registered from anywhere - including user extensions - is validated
  against :data:`BACKEND_SEAM` at lint time.

Adding a method to the seam therefore means: add it here first, then
implement it on every registered backend; both checkers fail until the
implementations exist.

The module is dependency-free by design (no numpy import, no repro
imports outside :mod:`typing`), so contracts stay importable on every
environment the reference backend supports.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol, runtime_checkable

#: The backend seam: every registered backend must provide these
#: callables.  Single source of truth - ``tools/repro_analyze`` reads
#: this tuple, so extending it without implementing the new method on
#: all registered backends fails the ``backend-contract`` rule.
BACKEND_SEAM: tuple[str, ...] = (
    "blocking_substrate",
    "profile_index",
    "weighting",
    "position_index",
    "blocking_graph",
    "pps_core",
    "pbs_core",
    "psn_core",
    "ranked_edges",
    "pruned_edges",
)

#: Seam method -> number of arguments after ``self``.  The
#: ``backend-contract`` rule binds this many positional arguments
#: against each implementation's signature, so an override that renames
#: parameters still conforms but one that changes arity does not.
BACKEND_SEAM_ARITY: dict[str, int] = {
    "blocking_substrate": 2,
    "profile_index": 1,
    "weighting": 2,
    "position_index": 1,
    "blocking_graph": 2,
    "pps_core": 3,
    "pbs_core": 2,
    "psn_core": 3,
    "ranked_edges": 1,
    "pruned_edges": 3,
}

#: The ``(i, j, weight)`` array triple every ranked-edge producer
#: returns, ordered by ``(-weight, i, j)``.  ``Any`` because the
#: contract layer never imports numpy; the concrete aliases live in
#: :mod:`repro.engine.pruning`.
EdgeArrays = tuple[Any, Any, Any]


@runtime_checkable
class Backend(Protocol):
    """Structural type of one execution backend.

    Satisfied by :class:`repro.engine.PythonBackend`,
    :class:`repro.engine.NumpyBackend` and
    :class:`repro.parallel.backend.ParallelBackend`; the conformance
    assertions next to each class make mypy prove it.  The structure
    factories are ``Any``-typed on purpose: the seam is *schema
    agnostic* - the python backend returns dict-of-lists reference
    structures, the numpy backends CSR arrays - and the progressive
    methods only rely on the shared public API of whichever family
    they received.
    """

    name: str

    @property
    def available(self) -> bool:
        """Whether this backend can run in the current environment."""

    @property
    def vectorized(self) -> bool:
        """Whether methods should use the array emission cores."""

    def require(self) -> "Backend":
        """Validate availability (raises when unusable); returns self."""

    # -- structure factories -----------------------------------------------

    def blocking_substrate(self, store: Any, spec: Any) -> Any:
        """A session blocking front end over one tokenization sweep.

        The returned object satisfies :class:`BlockingSubstrate`: it
        serves the blocked collection, the profile index and the
        Neighbor List of one ``ProfileStore`` from a single cached
        token sweep (the single-build guarantee).
        """

    def profile_index(self, collection: Any) -> Any:
        """A profile -> block-ids inverted index over scheduled blocks.

        ``collection`` is either a scheduled block collection or a
        :class:`BlockingSubstrate`; vectorized backends build the CSR
        index straight from a substrate's postings when given one.
        """

    def weighting(self, name: str, index: Any) -> Any:
        """A weighting scheme instance bound to a profile index."""

    def position_index(self, neighbor_list: Any) -> Any:
        """A profile -> Neighbor List positions inverted index."""

    # -- core factories (vectorized backends) ------------------------------

    def blocking_graph(self, index: Any, weighting: str) -> Any:
        """The materialized, weighted Blocking Graph over ``index``."""

    def pps_core(self, scheduled: Any, weighting: str, k_max: int | None) -> Any:
        """The PPS initialization/emission core over scheduled blocks."""

    def pbs_core(self, index: Any, graph: Any) -> Any:
        """The PBS block-event enumeration/emission core."""

    def psn_core(self, neighbor_list: Any, store: Any, weighting: Any) -> Any:
        """The LS/GS-PSN window-scoring core over one Neighbor List."""

    def ranked_edges(self, graph: Any) -> EdgeArrays:
        """Every distinct graph edge ranked by ``(-weight, i, j)``."""

    def pruned_edges(self, graph: Any, algorithm: str, k: int | None) -> EdgeArrays:
        """The retained edges of the pruned Blocking Graph, ranked."""


@runtime_checkable
class BlockingSubstrate(Protocol):
    """Structural type of a backend's blocking front end.

    Built once per resolution session by
    :meth:`Backend.blocking_substrate`; every structure below is served
    from the same cached tokenization sweep, so a session never
    tokenizes the store twice.  ``sweeps`` counts the sweeps actually
    performed - the single-build regression test asserts it stays 1.
    """

    sweeps: int
    #: Whether the served structures are the CSR/array versions (a
    #: vectorized backend may consume them directly) or the reference
    #: ones (vectorized consumers fall back to materialized blocks).
    vectorized: bool

    def blocks(self) -> Any:
        """The blocked collection after purging/filtering (workflow order)."""

    def profile_index(self, order: str) -> Any:
        """The profile index over the final blocks in processing ``order``
        (``"schedule"`` for PPS/PBS, ``"alpha"`` for ONLINE)."""

    def neighbor_list(self, tie_order: str, seed: int) -> Any:
        """The schema-agnostic Neighbor List (unpurged, unfiltered)."""


@runtime_checkable
class EmissionCore(Protocol):
    """Common contract of the vectorized emission cores.

    Every core is built by a backend seam method and must emit
    comparisons in the canonical sequential-accumulation order with
    ``(-weight, i, j)`` tie-breaking - that ordering is behavioural and
    enforced by the parity suite plus the ``determinism`` lint rule;
    the structural members live on the per-family refinements below
    (:class:`PPSCore`, :class:`PBSCore`, :class:`PSNCore`), because the
    three method families consume disjoint emission APIs.
    """


@runtime_checkable
class PPSCore(EmissionCore, Protocol):
    """Emission core consumed by Progressive Profile Scheduling."""

    def init_lists(self) -> tuple[list[tuple[int, float]], Any]:
        """The duplication-likelihood list and the comparison list."""

    def sync_checked(self, checked: Any) -> None:
        """Mirror externally-checked pairs into the core's bookkeeping."""

    def profile_topk(self, profile_id: int, k: int) -> list[Any]:
        """The best ``k`` unchecked comparisons of one profile."""

    def emit_schedule(self, *args: Any, **kwargs: Any) -> Any:
        """The full ranked emission schedule (arrays)."""


@runtime_checkable
class PBSCore(EmissionCore, Protocol):
    """Emission core consumed by Progressive Block Scheduling."""

    def block_comparisons(self, block_id: int) -> list[Any]:
        """The ranked fresh comparisons of one block."""

    def emit(self) -> Iterator[Any]:
        """Comparisons in block-schedule order, deduplicated."""


@runtime_checkable
class PSNCore(EmissionCore, Protocol):
    """Emission core consumed by the sorted-neighborhood methods."""

    def pair_frequencies(self, *args: Any, **kwargs: Any) -> Any:
        """Co-occurrence frequencies of the pairs inside one window."""

    def window_arrays(self, *args: Any, **kwargs: Any) -> Any:
        """The weighted ``(i, j, weight)`` arrays of one window."""

    def window_comparisons(self, distances: Any) -> list[Any]:
        """The ranked comparisons of one window."""

    def emit_window(self, distances: Any) -> Iterator[Any]:
        """Window comparisons as a stream."""


class PruningKernel(Protocol):
    """A Meta-blocking pruning entry point of one backend.

    ``algorithm`` is the canonical registry name (``"WEP"``...),
    ``k`` the optional cardinality budget; the return triple is ranked
    by ``(-weight, i, j)`` like every other edge producer.
    """

    def __call__(self, graph: Any, algorithm: str, k: int | None) -> EdgeArrays:
        """Retained edges of ``graph`` under ``algorithm``."""


__all__ = [
    "BACKEND_SEAM",
    "BACKEND_SEAM_ARITY",
    "EdgeArrays",
    "Backend",
    "BlockingSubstrate",
    "EmissionCore",
    "PPSCore",
    "PBSCore",
    "PSNCore",
    "PruningKernel",
]

"""Neighbor List substrate for the similarity-based progressive methods."""

from repro.neighborlist.neighbor_list import NeighborList
from repro.neighborlist.position_index import PositionIndex, build_position_index
from repro.neighborlist.rcf import (
    CFWeighting,
    NeighborWeighting,
    RCFWeighting,
    make_neighbor_weighting,
)

__all__ = [
    "NeighborList",
    "PositionIndex",
    "build_position_index",
    "CFWeighting",
    "NeighborWeighting",
    "RCFWeighting",
    "make_neighbor_weighting",
]

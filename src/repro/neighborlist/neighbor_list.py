"""The Neighbor List - core structure of the similarity-based methods.

The Neighbor List (Section 3.2, called "sorted list of records" in [5]) is
the sequence of profile ids obtained by sorting all blocking keys
alphabetically; in the schema-agnostic variant every distinct attribute-
value token of a profile is a key, so each profile appears once per token.

Profiles sharing a key form a *run* whose internal order carries no signal
- the paper's "coincidental proximity".  The run order is configurable:

* ``tie_order='insertion'`` - profiles in id order (deterministic, used by
  the worked-example tests);
* ``tie_order='random'`` - a seeded shuffle per run, reproducing the
  "relatively random order" the paper describes for real data.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.profiles import ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer, token_stream

_TIE_ORDERS = ("insertion", "random")


class NeighborList:
    """The sorted array of profile ids plus the parallel key array.

    ``entries[p]`` is the profile id at position ``p``; ``keys[p]`` is the
    blocking key that put it there (kept for inspection and tests - the
    algorithms only read ``entries``).
    """

    __slots__ = ("entries", "keys")

    def __init__(self, entries: Sequence[int], keys: Sequence[str]) -> None:
        if len(entries) != len(keys):
            raise ValueError("entries and keys must be parallel arrays")
        self.entries: list[int] = list(entries)
        self.keys: list[str] = list(keys)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, position: int) -> int:
        return self.entries[position]

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_key_pairs(
        cls,
        pairs: Iterable[tuple[str, int]],
        tie_order: str = "insertion",
        seed: int | None = 0,
    ) -> "NeighborList":
        """Build from (key, profile_id) pairs.

        Pairs are sorted by key; the order inside each equal-key run
        follows ``tie_order``.
        """
        if tie_order not in _TIE_ORDERS:
            raise ValueError(f"tie_order must be one of {_TIE_ORDERS}")
        grouped: dict[str, list[int]] = {}
        for key, profile_id in pairs:
            grouped.setdefault(key, []).append(profile_id)

        rng = random.Random(seed) if tie_order == "random" else None
        entries: list[int] = []
        keys: list[str] = []
        for key in sorted(grouped):
            run = grouped[key]
            if rng is not None and len(run) > 1:
                rng.shuffle(run)
            entries.extend(run)
            keys.extend([key] * len(run))
        return cls(entries, keys)

    @classmethod
    def schema_agnostic(
        cls,
        store: ProfileStore,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        tie_order: str = "insertion",
        seed: int | None = 0,
    ) -> "NeighborList":
        """The schema-agnostic Neighbor List: one entry per profile token."""
        return cls.from_key_pairs(
            token_stream(store, tokenizer), tie_order=tie_order, seed=seed
        )

    # -- incremental maintenance ---------------------------------------------

    def merged_with(
        self, pairs: Iterable[tuple[str, int]]
    ) -> "NeighborList":
        """A new list with extra (key, profile_id) pairs merged in order.

        One linear pass (plus a sort of just the incoming pairs) instead
        of re-sorting the whole list - the delta path of the incremental
        Neighbor List.  Existing entries keep their relative order; on
        equal keys the incoming entries follow the existing run in
        ascending id order, i.e. insertion tie order for ids assigned
        after the current ones.
        """
        incoming = sorted(pairs)
        entries: list[int] = []
        keys: list[str] = []
        position = 0
        n = len(self.entries)
        for key, profile_id in incoming:
            while position < n and self.keys[position] <= key:
                keys.append(self.keys[position])
                entries.append(self.entries[position])
                position += 1
            keys.append(key)
            entries.append(profile_id)
        keys.extend(self.keys[position:])
        entries.extend(self.entries[position:])
        return NeighborList(entries, keys)

    # -- inspection ----------------------------------------------------------

    def runs(self) -> list[tuple[str, list[int]]]:
        """(key, profile ids) for each equal-key run, in list order."""
        out: list[tuple[str, list[int]]] = []
        for position, key in enumerate(self.keys):
            if out and out[-1][0] == key:
                out[-1][1].append(self.entries[position])
            else:
                out.append((key, [self.entries[position]]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeighborList({len(self.entries)} positions)"

"""Co-occurrence weighting schemes over the Neighbor List.

The paper introduces **RCF** (Relative Co-occurrence Frequency, Section
5.1): how often a pair of profiles lies ``w`` positions apart in the
Neighbor List, normalized by the number of positions of the two profiles:

    RCF(i, j) = freq / (|PI[i]| + |PI[j]| - freq)

which is a Jaccard-style ratio between co-occurrences and appearances.
LS-PSN and GS-PSN are "compatible with any other schema-agnostic weighting
scheme that infers the similarity of profiles exclusively from their
co-occurrences in the incremental sliding window", so the scheme is a small
strategy object; a raw co-occurrence-count scheme (CF) is provided for the
ablation benches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.neighborlist.position_index import PositionIndex


class NeighborWeighting(ABC):
    """Strategy turning a co-occurrence frequency into a pair weight."""

    name: str = "abstract"

    @abstractmethod
    def weight(self, frequency: int, i: int, j: int, index: PositionIndex) -> float:
        """Weight of pair (i, j) given its window co-occurrence count."""


class RCFWeighting(NeighborWeighting):
    """Relative Co-occurrence Frequency - the paper's scheme."""

    name = "RCF"

    def weight(self, frequency: int, i: int, j: int, index: PositionIndex) -> float:
        if frequency <= 0:
            return 0.0
        appearances = index.appearance_count(i) + index.appearance_count(j)
        denominator = appearances - frequency
        if denominator <= 0:
            # Degenerate: every appearance of both profiles co-occurs.
            return float(frequency)
        return frequency / denominator


class CFWeighting(NeighborWeighting):
    """Raw co-occurrence frequency (unnormalized ablation baseline)."""

    name = "CF"

    def weight(self, frequency: int, i: int, j: int, index: PositionIndex) -> float:
        return float(frequency)


_SCHEMES: dict[str, type[NeighborWeighting]] = {
    cls.name: cls for cls in (RCFWeighting, CFWeighting)
}


def make_neighbor_weighting(name: str) -> NeighborWeighting:
    """Instantiate a Neighbor List weighting scheme by name."""
    try:
        return _SCHEMES[name.upper()]()
    except KeyError:
        raise ValueError(
            f"unknown neighbor weighting {name!r}; available: {sorted(_SCHEMES)}"
        ) from None

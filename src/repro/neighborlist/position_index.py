"""The Position Index: profile id -> its positions in the Neighbor List.

Introduced by the paper (Section 5.1) to implement the weighted Neighbor
List efficiently: instead of scanning the whole list, LS-PSN and GS-PSN
visit only the positions of each profile and look ``windowSize`` places
left and right.  The index is "generic enough to accommodate any weighting
scheme that relies on the co-occurrence frequency of profile pairs".
"""

from __future__ import annotations

from typing import Sequence

from repro.neighborlist.neighbor_list import NeighborList


def build_position_index(neighbor_list: NeighborList, backend: str = "python"):
    """Backend seam: a Position Index over ``neighbor_list``.

    ``backend="python"`` returns the reference :class:`PositionIndex`;
    ``backend="numpy"`` returns the API-compatible CSR
    :class:`repro.engine.csr.ArrayPositionIndex` (requires the
    ``repro[speed]`` extra).
    """
    from repro.engine import get_backend

    return get_backend(backend).require().position_index(neighbor_list)


class PositionIndex:
    """Inverted index from profile ids to Neighbor List positions."""

    __slots__ = ("neighbor_list", "_positions")

    def __init__(self, neighbor_list: NeighborList) -> None:
        self.neighbor_list = neighbor_list
        positions: dict[int, list[int]] = {}
        for position, profile_id in enumerate(neighbor_list.entries):
            positions.setdefault(profile_id, []).append(position)
        self._positions = positions

    def positions_of(self, profile_id: int) -> Sequence[int]:
        """Sorted positions of ``profile_id`` in the Neighbor List."""
        return self._positions.get(profile_id, ())

    def appearance_count(self, profile_id: int) -> int:
        """|PI[i]| - how many blocking keys the profile contributed."""
        return len(self._positions.get(profile_id, ()))

    def indexed_profiles(self) -> list[int]:
        """Profile ids with at least one position, ascending."""
        return sorted(self._positions)

    def cooccurrence_frequency(
        self, i: int, j: int, window_size: int, cumulative: bool = False
    ) -> int:
        """Number of position pairs of (i, j) at distance ``window_size``.

        With ``cumulative=True``, counts pairs at any distance in
        ``[1, window_size]`` (the GS-PSN aggregation).  This is the
        reference implementation used by the tests; the progressive
        methods compute the same quantity incrementally.
        """
        if window_size < 1:
            raise ValueError("window_size must be positive")
        a = self._positions.get(i, ())
        b = self._positions.get(j, ())
        if not a or not b:
            return 0
        b_set = set(b)
        count = 0
        distances = (
            range(1, window_size + 1) if cumulative else (window_size,)
        )
        for position in a:
            for distance in distances:
                if position + distance in b_set:
                    count += 1
                if position - distance in b_set:
                    count += 1
        return count

    def __len__(self) -> int:
        return len(self._positions)

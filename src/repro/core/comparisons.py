"""Comparisons and the Comparison List.

A *comparison* c_ij is a candidate pair of profiles handed to the match
function.  Progressive methods emit comparisons in non-increasing estimated
matching likelihood; the paper's methods buffer the current batch of best
comparisons in a *Comparison List* (Section 5) that is refilled whenever it
runs empty.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, NamedTuple

from repro.core.ground_truth import normalize_pair


class Comparison(NamedTuple):
    """A candidate pair with its estimated matching likelihood.

    ``i < j`` always holds (pairs are unordered); ``weight`` is the score
    assigned by the emitting method, higher meaning more likely to match.
    """

    i: int
    j: int
    weight: float = 0.0

    @classmethod
    def make(cls, i: int, j: int, weight: float = 0.0) -> "Comparison":
        """Build a comparison with the pair in canonical order."""
        a, b = normalize_pair(i, j)
        return cls(a, b, weight)

    @property
    def pair(self) -> tuple[int, int]:
        """The canonical (min, max) profile-id pair."""
        return (self.i, self.j)


class ComparisonList:
    """A buffer of comparisons sorted in non-increasing weight.

    This is the paper's Comparison List: the initialization phase (and each
    refill during emission) bulk-loads a batch of weighted comparisons; the
    emission phase pops them from the best to the worst.  Bulk loading plus
    one sort is cheaper than maintaining a heap when the whole batch is
    known up front, which is exactly the access pattern of LS-PSN, GS-PSN,
    PBS and PPS.

    Ties are broken deterministically by ascending pair so that runs are
    reproducible.
    """

    __slots__ = ("_items", "_sorted")

    def __init__(self, comparisons: Iterable[Comparison] = ()) -> None:
        self._items: list[Comparison] = list(comparisons)
        self._sorted = False

    def add(self, comparison: Comparison) -> None:
        """Append a comparison (invalidates the current ordering)."""
        self._items.append(comparison)
        self._sorted = False

    def extend(self, comparisons: Iterable[Comparison]) -> None:
        """Append many comparisons (invalidates the current ordering)."""
        self._items.extend(comparisons)
        self._sorted = False

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            # Highest weight first; ties by ascending (i, j) for determinism.
            self._items.sort(key=lambda c: (-c.weight, c.i, c.j))
            self._sorted = True

    def remove_first(self) -> Comparison:
        """Pop and return the highest-weighted comparison."""
        self._ensure_sorted()
        if not self._items:
            raise IndexError("ComparisonList is empty")
        return self._items.pop(0)

    def drain(self) -> Iterator[Comparison]:
        """Yield all comparisons from best to worst, emptying the list."""
        self._ensure_sorted()
        items, self._items = self._items, []
        yield from items

    def peek(self) -> Comparison:
        """The highest-weighted comparison without removing it."""
        self._ensure_sorted()
        if not self._items:
            raise IndexError("ComparisonList is empty")
        return self._items[0]

    def is_empty(self) -> bool:
        return not self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Comparison]:
        self._ensure_sorted()
        return iter(list(self._items))


class SortedStack:
    """Bounded min-heap keeping the K_max highest-weighted comparisons.

    The paper's PPS emission phase (Section 5.2.2) uses a "SortedStack"
    whose head is always the *lowest*-weighted comparison so that it can be
    discarded in O(1) when the stack exceeds K_max.  A binary heap gives the
    same contract with O(log n) push/pop, which is what the constant-factor
    "sorted" structure amounts to in practice.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Comparison]] = []
        self._counter = 0

    def push(self, comparison: Comparison) -> None:
        """Insert a comparison, keeping the lowest weight on top."""
        # (weight, -i, -j) ordering: on weight ties the *larger* pair is
        # considered lower priority, matching ComparisonList's tie-break.
        heapq.heappush(
            self._heap,
            (comparison.weight, -comparison.i, -comparison.j, comparison),
        )
        self._counter += 1

    def pop(self) -> Comparison:
        """Remove and return the lowest-weighted comparison."""
        if not self._heap:
            raise IndexError("SortedStack is empty")
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        return len(self._heap)

    def drain_descending(self) -> list[Comparison]:
        """Empty the stack, returning comparisons from best to worst."""
        ascending = [heapq.heappop(self._heap)[3] for _ in range(len(self._heap))]
        ascending.reverse()
        return ascending

"""Ground truth for ER benchmarks: match pairs and equivalence clusters.

The benchmark datasets ship with known duplicate pairs (|D(P)| in Table 2 of
the paper).  For Dirty ER the duplicate relation is an equivalence relation,
so the ground truth can equivalently be seen as a set of *equivalence
clusters*; ``cora`` famously has |D(P)| about 13x larger than |P| because its
clusters are large.  This module stores both views and keeps them
consistent via union-find transitive closure.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def normalize_pair(i: int, j: int) -> tuple[int, int]:
    """Canonical (min, max) form of an unordered profile pair."""
    if i == j:
        raise ValueError(f"a profile cannot match itself (id {i})")
    return (i, j) if i < j else (j, i)


class _UnionFind:
    """Minimal union-find over dense integer ids with path compression."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self.parent
        if x not in parent:
            parent[x] = x
            return x
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


class GroundTruth:
    """The set of true matches of a profile collection.

    Parameters
    ----------
    pairs:
        Iterable of matching ``(i, j)`` profile-id pairs.  Order inside a
        pair is irrelevant.
    closed:
        When True (the default for Dirty ER semantics), the transitive
        closure of the given pairs is taken: if (a,b) and (b,c) are
        matches, (a,c) is one too.  Clean-clean benchmarks typically ship
        one-to-one mappings where closure is a no-op.
    """

    __slots__ = ("_pairs", "_clusters")

    def __init__(self, pairs: Iterable[tuple[int, int]], closed: bool = True) -> None:
        seed_pairs = {normalize_pair(i, j) for i, j in pairs}
        if closed:
            uf = _UnionFind()
            for i, j in seed_pairs:  # repro-analyze: ignore[determinism] union-find closure is order-independent; clusters are sorted below
                uf.union(i, j)
            members: dict[int, list[int]] = {}
            for node in {p for pair in seed_pairs for p in pair}:  # repro-analyze: ignore[determinism] membership grouping is order-independent; groups are sorted below
                members.setdefault(uf.find(node), []).append(node)
            clusters = [tuple(sorted(group)) for group in members.values()]
            closed_pairs: set[tuple[int, int]] = set()
            for group in clusters:
                for a_index in range(len(group)):
                    for b_index in range(a_index + 1, len(group)):
                        closed_pairs.add((group[a_index], group[b_index]))
            self._pairs = frozenset(closed_pairs)
            self._clusters = tuple(sorted(clusters))
        else:
            self._pairs = frozenset(seed_pairs)
            self._clusters = self._clusters_from_pairs(seed_pairs)

    @staticmethod
    def _clusters_from_pairs(
        pairs: set[tuple[int, int]],
    ) -> tuple[tuple[int, ...], ...]:
        uf = _UnionFind()
        for i, j in pairs:  # repro-analyze: ignore[determinism] union-find closure is order-independent; clusters are sorted below
            uf.union(i, j)
        members: dict[int, list[int]] = {}
        for node in {p for pair in pairs for p in pair}:  # repro-analyze: ignore[determinism] membership grouping is order-independent; groups are sorted below
            members.setdefault(uf.find(node), []).append(node)
        return tuple(sorted(tuple(sorted(group)) for group in members.values()))

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_clusters(cls, clusters: Iterable[Iterable[int]]) -> "GroundTruth":
        """Build from explicit equivalence clusters."""
        pairs: list[tuple[int, int]] = []
        for cluster in clusters:
            ids = sorted(set(cluster))
            for a_index in range(len(ids)):
                for b_index in range(a_index + 1, len(ids)):
                    pairs.append((ids[a_index], ids[b_index]))
        return cls(pairs, closed=False)

    # -- queries ---------------------------------------------------------------

    def is_match(self, i: int, j: int) -> bool:
        """Whether profiles ``i`` and ``j`` are true duplicates."""
        if i == j:
            return False
        return normalize_pair(i, j) in self._pairs

    @property
    def pairs(self) -> frozenset[tuple[int, int]]:
        """All matching pairs in canonical (min, max) form."""
        return self._pairs

    @property
    def clusters(self) -> tuple[tuple[int, ...], ...]:
        """Equivalence clusters (each a sorted tuple of profile ids)."""
        return self._clusters

    def cluster_of(self, profile_id: int) -> tuple[int, ...]:
        """The cluster containing ``profile_id`` (singleton if unmatched)."""
        for cluster in self._clusters:
            if profile_id in cluster:
                return cluster
        return (profile_id,)

    def __len__(self) -> int:
        """|D(P)| - the number of true matching pairs."""
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._pairs))

    def __contains__(self, pair: tuple[int, int]) -> bool:
        i, j = pair
        return self.is_match(i, j)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroundTruth({len(self._pairs)} pairs, {len(self._clusters)} clusters)"

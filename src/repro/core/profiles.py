"""Entity profiles and profile collections.

The paper's data model (Section 3): an *entity profile* is a uniquely
identified set of attribute name-value pairs.  Profiles may come from
relational records, RDF triples, JSON objects or free text; the model is
deliberately schema-agnostic, so attribute names are plain strings and a
profile may use any subset of them.

Two ER task shapes are supported (Section 3):

* **Dirty ER** - a single collection that contains duplicates in itself;
  every pair of distinct profiles is a candidate comparison.
* **Clean-clean ER** - two individually duplicate-free collections; only
  cross-source pairs are candidate comparisons.

:class:`ProfileStore` holds one task's profiles with dense integer ids so
that the algorithms can use flat arrays for their indexes.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Mapping, Sequence


class ERType(enum.Enum):
    """The two ER task shapes from Section 3 of the paper."""

    DIRTY = "dirty"
    CLEAN_CLEAN = "clean-clean"


class EntityProfile:
    """A uniquely identified set of attribute name-value pairs.

    Parameters
    ----------
    profile_id:
        Dense integer id of the profile inside its :class:`ProfileStore`.
    attributes:
        The name-value pairs.  Accepts either a mapping ``name -> value``
        (or ``name -> list of values``) or an iterable of ``(name, value)``
        tuples.  Values are stored as strings; non-string values are
        converted with :func:`str`.
    source:
        Source id.  ``0`` for Dirty ER; ``0`` or ``1`` for Clean-clean ER.
    """

    __slots__ = ("profile_id", "pairs", "source")

    def __init__(
        self,
        profile_id: int,
        attributes: Mapping[str, object] | Iterable[tuple[str, object]],
        source: int = 0,
    ) -> None:
        if isinstance(attributes, Mapping):
            items: list[tuple[str, object]] = []
            for name, value in attributes.items():
                if isinstance(value, (list, tuple, set, frozenset)):
                    items.extend((name, v) for v in value)
                else:
                    items.append((name, value))
        else:
            items = list(attributes)
        self.profile_id = int(profile_id)
        self.pairs: tuple[tuple[str, str], ...] = tuple(
            (str(name), str(value)) for name, value in items
        )
        self.source = int(source)

    # -- accessors ---------------------------------------------------------

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Distinct attribute names used by this profile."""
        seen: dict[str, None] = {}
        for name, _ in self.pairs:
            seen.setdefault(name)
        return tuple(seen)

    def values(self, name: str | None = None) -> tuple[str, ...]:
        """All values, or all values of attribute ``name``."""
        if name is None:
            return tuple(value for _, value in self.pairs)
        return tuple(value for attr, value in self.pairs if attr == name)

    def value(self, name: str, default: str = "") -> str:
        """First value of attribute ``name``, or ``default`` if absent."""
        for attr, val in self.pairs:
            if attr == name:
                return val
        return default

    def text(self) -> str:
        """All attribute values concatenated - the schema-agnostic view.

        This is what the match functions of Section 7.3 compare: the
        profile as an unstructured string, independent of any schema.
        """
        return " ".join(value for _, value in self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntityProfile):
            return NotImplemented
        return (
            self.profile_id == other.profile_id
            and self.pairs == other.pairs
            and self.source == other.source
        )

    def __hash__(self) -> int:
        return hash((self.profile_id, self.source, self.pairs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(f"{n}={v!r}" for n, v in self.pairs[:3])
        if len(self.pairs) > 3:
            preview += ", ..."
        return f"EntityProfile(id={self.profile_id}, source={self.source}, {preview})"


class ProfileStore:
    """An indexed profile collection for one ER task.

    Profiles are stored in a dense list so that ``store[i]`` is the profile
    with id ``i``.  The store knows the task shape (:class:`ERType`) and is
    the single authority on which comparisons are valid:

    * Dirty ER: any pair of distinct profiles.
    * Clean-clean ER: pairs with different ``source`` ids only.
    """

    __slots__ = ("profiles", "er_type", "_source_counts")

    def __init__(
        self,
        profiles: Sequence[EntityProfile],
        er_type: ERType = ERType.DIRTY,
    ) -> None:
        self.profiles: list[EntityProfile] = list(profiles)
        for index, profile in enumerate(self.profiles):
            if profile.profile_id != index:
                raise ValueError(
                    f"profile at position {index} has id {profile.profile_id}; "
                    "ProfileStore requires dense ids 0..n-1"
                )
        self.er_type = er_type
        counts: dict[int, int] = {}
        for profile in self.profiles:
            counts[profile.source] = counts.get(profile.source, 0) + 1
        self._source_counts = counts
        if er_type is ERType.CLEAN_CLEAN:
            if set(counts) - {0, 1}:
                raise ValueError(
                    "Clean-clean ER requires sources 0 and 1, "
                    f"got sources {sorted(counts)}"
                )

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_attribute_maps(
        cls,
        records: Iterable[Mapping[str, object]],
        er_type: ERType = ERType.DIRTY,
        sources: Iterable[int] | None = None,
    ) -> "ProfileStore":
        """Build a store from plain dictionaries (ids assigned densely)."""
        records = list(records)
        if sources is None:
            source_list = [0] * len(records)
        else:
            source_list = list(sources)
            if len(source_list) != len(records):
                raise ValueError("sources must align with records")
        profiles = [
            EntityProfile(i, record, source)
            for i, (record, source) in enumerate(zip(records, source_list, strict=True))
        ]
        return cls(profiles, er_type)

    @classmethod
    def clean_clean(
        cls,
        left: Sequence[EntityProfile | Mapping[str, object]],
        right: Sequence[EntityProfile | Mapping[str, object]],
    ) -> "ProfileStore":
        """Build a Clean-clean store from two collections.

        Ids are re-assigned densely: the left collection occupies ids
        ``0..len(left)-1`` with source 0, the right collection follows with
        source 1.
        """
        profiles: list[EntityProfile] = []
        for source, collection in ((0, left), (1, right)):
            for item in collection:
                pid = len(profiles)
                if isinstance(item, EntityProfile):
                    profiles.append(EntityProfile(pid, item.pairs, source))
                else:
                    profiles.append(EntityProfile(pid, item, source))
        return cls(profiles, ERType.CLEAN_CLEAN)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.profiles)

    def __getitem__(self, profile_id: int) -> EntityProfile:
        return self.profiles[profile_id]

    def __iter__(self) -> Iterator[EntityProfile]:
        return iter(self.profiles)

    # -- task semantics ------------------------------------------------------

    def source_of(self, profile_id: int) -> int:
        """Source id of a profile (0 for Dirty ER)."""
        return self.profiles[profile_id].source

    def source_size(self, source: int) -> int:
        """Number of profiles with the given source id."""
        return self._source_counts.get(source, 0)

    def source_ids(self, source: int) -> list[int]:
        """All profile ids with the given source id."""
        return [p.profile_id for p in self.profiles if p.source == source]

    def valid_comparison(self, i: int, j: int) -> bool:
        """Whether ``(i, j)`` is a candidate comparison for this task."""
        if i == j:
            return False
        if self.er_type is ERType.DIRTY:
            return True
        return self.profiles[i].source != self.profiles[j].source

    def total_candidate_comparisons(self) -> int:
        """Brute-force comparison count (the quadratic baseline)."""
        n = len(self.profiles)
        if self.er_type is ERType.DIRTY:
            return n * (n - 1) // 2
        return self.source_size(0) * self.source_size(1)

    # -- statistics (Table 2 of the paper) ------------------------------------

    def attribute_name_count(self) -> int:
        """Number of distinct attribute names across all profiles."""
        names: set[str] = set()
        for profile in self.profiles:
            for name, _ in profile.pairs:
                names.add(name)
        return len(names)

    def attribute_name_count_by_source(self) -> dict[int, int]:
        """Distinct attribute names per source (Table 2 reports both)."""
        names: dict[int, set[str]] = {}
        for profile in self.profiles:
            bucket = names.setdefault(profile.source, set())
            for name, _ in profile.pairs:
                bucket.add(name)
        return {source: len(bucket) for source, bucket in names.items()}

    def mean_pairs_per_profile(self) -> float:
        """Average number of name-value pairs per profile (|p| in Table 2)."""
        if not self.profiles:
            return 0.0
        return sum(len(p) for p in self.profiles) / len(self.profiles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProfileStore({len(self.profiles)} profiles, "
            f"{self.er_type.value}, sources={self._source_counts})"
        )

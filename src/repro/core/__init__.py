"""Core data model: profiles, ground truth, comparisons, tokenization."""

from repro.core.comparisons import Comparison, ComparisonList, SortedStack
from repro.core.ground_truth import GroundTruth, normalize_pair
from repro.core.profiles import EntityProfile, ERType, ProfileStore
from repro.core.tokenization import (
    DEFAULT_TOKENIZER,
    Tokenizer,
    suffixes,
    token_stream,
)

__all__ = [
    "Comparison",
    "ComparisonList",
    "SortedStack",
    "GroundTruth",
    "normalize_pair",
    "EntityProfile",
    "ERType",
    "ProfileStore",
    "Tokenizer",
    "DEFAULT_TOKENIZER",
    "token_stream",
    "suffixes",
]

"""Attribute-value tokenization: the schema-agnostic blocking keys.

The schema-agnostic methods of the paper use *attribute value tokens* as
blocking keys (Section 3.2, following Token Blocking [18] and the
schema-agnostic configurations of [7]): every token that appears in any
attribute value of a profile is one of its keys, regardless of which
attribute it came from.

The tokenizer here is deliberately simple and deterministic: split on
non-alphanumeric characters, lowercase, drop tokens shorter than a minimum
length, and optionally drop pure numbers.  URIs therefore decompose into
their path segments - e.g. ``http://dbpedia.org/resource/Berlin`` yields
``http``, ``dbpedia``, ``org``, ``resource``, ``berlin`` - which is exactly
the behavior the paper relies on when discussing URI prefixes polluting the
Neighbor List on freebase while the discriminative local names keep the
equality principle alive.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.profiles import EntityProfile

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+")


@dataclass(frozen=True)
class Tokenizer:
    """Configurable attribute-value tokenizer.

    Parameters
    ----------
    min_length:
        Tokens shorter than this are discarded (default 1: keep all).
    lowercase:
        Normalize case so that 'Tailor' and 'tailor' share a block.
    keep_numeric:
        Whether pure-digit tokens (years, zip codes, ids) are kept.  They
        are often highly discriminative, so the default keeps them.
    """

    min_length: int = 1
    lowercase: bool = True
    keep_numeric: bool = True

    def tokens(self, value: str) -> list[str]:
        """Tokens of a single attribute value, in order of appearance."""
        if self.lowercase and value.isascii():
            # Lowercasing an ASCII value first yields the same tokens
            # (ASCII lower() never moves characters in or out of the
            # pattern's classes) with one str.lower instead of one per
            # token - the hot path of every blocking build.  Non-ASCII
            # values (e.g. Kelvin sign, dotted I) keep the per-token
            # path, whose semantics are the reference.
            raw = _TOKEN_PATTERN.findall(value.lower())
        else:
            raw = _TOKEN_PATTERN.findall(value)
            if self.lowercase:
                raw = [token.lower() for token in raw]
        if self.min_length <= 1 and self.keep_numeric:
            return raw
        min_length = self.min_length
        keep_numeric = self.keep_numeric
        return [
            token
            for token in raw
            if len(token) >= min_length and (keep_numeric or not token.isdigit())
        ]

    def profile_tokens(self, profile: EntityProfile) -> list[str]:
        """All tokens of all attribute values of a profile (with repeats)."""
        out: list[str] = []
        for _, value in profile.pairs:
            out.extend(self.tokens(value))
        return out

    def distinct_profile_tokens(self, profile: EntityProfile) -> list[str]:
        """Distinct tokens of a profile, in first-appearance order.

        These are the profile's schema-agnostic blocking keys: each
        distinct token indexes the profile into one block (Token Blocking)
        and contributes one position to the Neighbor List.
        """
        return list(dict.fromkeys(self.profile_tokens(profile)))


DEFAULT_TOKENIZER = Tokenizer()


def token_stream(
    profiles: Iterable[EntityProfile],
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
) -> Iterator[tuple[str, int]]:
    """Yield ``(token, profile_id)`` pairs over distinct per-profile tokens.

    This is the shared front end of Token Blocking and the schema-agnostic
    Neighbor List: both consume the same stream and differ only in whether
    they group by token (blocks) or sort by token (neighbor list).
    """
    for profile in profiles:
        for token in tokenizer.distinct_profile_tokens(profile):
            yield token, profile.profile_id


def suffixes(token: str, min_length: int) -> list[str]:
    """All suffixes of ``token`` with at least ``min_length`` characters.

    Used by Suffix Arrays Blocking (Section 4.2): the token itself is the
    longest suffix; e.g. ``suffixes('gain', 2) == ['gain', 'ain', 'in']``.
    Tokens shorter than ``min_length`` yield nothing.
    """
    if min_length < 1:
        raise ValueError("min_length must be positive")
    return [token[start:] for start in range(0, len(token) - min_length + 1)]

"""Token Blocking - schema-agnostic Standard Blocking [18].

Creates one block per distinct attribute-value token that appears in at
least two profiles (at least one per source for Clean-clean ER), regardless
of the attribute the token came from.  This is step (1) of the paper's
Token Blocking workflow (Section 7, "Parameter configuration") and the
source of the redundancy-positive blocks required by the equality-based
progressive methods.
"""

from __future__ import annotations

from typing import Iterable

from repro.blocking.base import Block, BlockCollection
from repro.core.profiles import ERType, ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer, token_stream
from repro.registry import blocking_schemes


class TokenBlocking:
    """Builds token blocks from a profile store.

    Parameters
    ----------
    tokenizer:
        Controls how attribute values decompose into tokens.
    """

    def __init__(self, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> None:
        self.tokenizer = tokenizer

    def build(self, store: ProfileStore) -> BlockCollection:
        """One block per token shared by >= 2 profiles (cross-source for
        Clean-clean), in deterministic (alphabetical) key order."""
        return self.build_from_pairs(token_stream(store, self.tokenizer), store)

    @staticmethod
    def build_from_pairs(
        pairs: Iterable[tuple[str, int]], store: ProfileStore
    ) -> BlockCollection:
        """The grouping half of :meth:`build`, over a ``(token, id)`` stream.

        Split out so the blocking substrate can cache one tokenization
        sweep and replay it here; ``build`` routes through this method,
        keeping a single grouping code path.
        """
        buckets: dict[str, list[int]] = {}
        for token, profile_id in pairs:
            buckets.setdefault(token, []).append(profile_id)

        blocks: list[Block] = []
        cross_source = store.er_type is ERType.CLEAN_CLEAN
        for token in sorted(buckets):
            ids = buckets[token]
            if len(ids) < 2:
                continue
            block = Block(token, ids, store)
            if cross_source and (not block.left_ids or not block.right_ids):
                continue
            blocks.append(block)
        return BlockCollection(blocks, store)


blocking_schemes.register("token", TokenBlocking, aliases=("token-blocking",))

"""Block Filtering [12] - step (3) of the Token Blocking workflow.

Retains every profile only in a fraction of its most important blocks -
importance being inverse size, since smaller blocks correspond to rarer,
more distinctive keys.  The paper keeps each profile in 80% of its smallest
blocks.  Filtering shrinks blocks (rather than dropping them wholesale), so
the result is a rebuilt collection whose blocks contain only the retained
profile-block assignments.
"""

from __future__ import annotations

import math

from repro.blocking.base import Block, BlockCollection
from repro.core.profiles import ERType


class BlockFiltering:
    """Keep each profile in a ratio of its smallest blocks.

    Parameters
    ----------
    ratio:
        Fraction of each profile's blocks to retain (paper: 0.8).  The
        retained count is ``ceil(ratio * |B_i|)`` so a profile appearing in
        at least one block always keeps at least one.
    """

    def __init__(self, ratio: float = 0.8) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio

    def apply(self, collection: BlockCollection) -> BlockCollection:
        """A new collection with per-profile assignments filtered."""
        store = collection.store

        # Rank blocks by ascending cardinality: the profile keeps its
        # smallest (most distinctive) blocks.  Ties broken by key for
        # determinism.  Cardinalities are computed once per collection,
        # not inside the sort key.
        er_type = store.er_type
        blocks = collection.blocks
        cardinalities = collection.cardinalities()
        order = sorted(
            range(len(blocks)),
            key=lambda idx: (cardinalities[idx], blocks[idx].key),
        )
        rank_of_block = [0] * len(collection.blocks)
        for rank, block_index in enumerate(order):
            rank_of_block[block_index] = rank

        # Collect each profile's blocks, best (smallest) first.
        blocks_of_profile: dict[int, list[int]] = {}
        setdefault = blocks_of_profile.setdefault
        for block_index, block in enumerate(collection.blocks):
            for profile_id in block.ids:
                setdefault(profile_id, []).append(block_index)

        ratio = self.ratio
        retained: dict[int, frozenset[int]] = {}
        for profile_id, block_indexes in blocks_of_profile.items():
            block_indexes.sort(key=rank_of_block.__getitem__)
            keep = math.ceil(ratio * len(block_indexes))
            retained[profile_id] = frozenset(block_indexes[:keep])

        cross_source = er_type is ERType.CLEAN_CLEAN
        empty: frozenset[int] = frozenset()
        new_blocks: list[Block] = []
        for block_index, block in enumerate(collection.blocks):
            ids = [
                pid
                for pid in block.ids
                if block_index in retained.get(pid, empty)
            ]
            if len(ids) < 2:
                continue
            new_block = Block(block.key, ids, store)
            if cross_source and (not new_block.left_ids or not new_block.right_ids):
                continue
            new_blocks.append(new_block)
        return BlockCollection(new_blocks, store)

"""Blocks and block collections.

A *block* groups profiles that share a blocking key; only intra-block pairs
are candidate comparisons (Section 3).  Cardinality depends on the ER task:

* Dirty ER: ``|b| * (|b| - 1) / 2`` pairs;
* Clean-clean ER: only cross-source pairs, ``|b ^ P1| * |b ^ P2|``.

The paper's notation: ``|b|`` is block size, ``||b||`` its cardinality,
``|B|`` the number of blocks and ``||B||`` the aggregate cardinality.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.core.comparisons import Comparison
from repro.core.profiles import ERType, ProfileStore


class Block:
    """A single block: a key and the ids of the profiles it contains.

    For Clean-clean tasks the ids of the two sources are kept separately so
    that cardinality and comparison enumeration stay linear.
    """

    __slots__ = ("key", "ids", "left_ids", "right_ids", "block_id")

    def __init__(
        self,
        key: str,
        ids: Sequence[int],
        store: ProfileStore,
        block_id: int = -1,
    ) -> None:
        self.key = key
        self.ids: tuple[int, ...] = tuple(ids)
        self.block_id = block_id
        if store.er_type is ERType.CLEAN_CLEAN:
            self.left_ids = tuple(i for i in self.ids if store.source_of(i) == 0)
            self.right_ids = tuple(i for i in self.ids if store.source_of(i) == 1)
        else:
            self.left_ids = self.ids
            self.right_ids = ()

    @property
    def size(self) -> int:
        """|b| - the number of profiles in the block."""
        return len(self.ids)

    def cardinality(self, er_type: ERType) -> int:
        """||b|| - the number of comparisons the block yields."""
        if er_type is ERType.CLEAN_CLEAN:
            return len(self.left_ids) * len(self.right_ids)
        n = len(self.ids)
        return n * (n - 1) // 2

    def comparisons(self, er_type: ERType) -> Iterator[Comparison]:
        """All valid comparisons of this block, weight 0, canonical order."""
        if er_type is ERType.CLEAN_CLEAN:
            for i in self.left_ids:
                for j in self.right_ids:
                    yield Comparison.make(i, j)
        else:
            ids = self.ids
            for a in range(len(ids)):
                for b in range(a + 1, len(ids)):
                    yield Comparison.make(ids[a], ids[b])

    def __contains__(self, profile_id: int) -> bool:
        return profile_id in self.ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.key!r}, size={self.size})"


class BlockCollection:
    """An ordered collection of blocks over one profile store."""

    __slots__ = ("blocks", "store")

    def __init__(self, blocks: Iterable[Block], store: ProfileStore) -> None:
        self.blocks: list[Block] = list(blocks)
        self.store = store

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        """|B| - the number of blocks."""
        return len(self.blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __getitem__(self, index: int) -> Block:
        return self.blocks[index]

    # -- aggregate statistics ---------------------------------------------------

    def cardinalities(self) -> list[int]:
        """||b|| of every block, in collection order.

        Computed once and reused by the workflow stages (scheduling,
        filtering) whose sort keys would otherwise recompute the
        cardinality O(|B| log |B|) times.
        """
        er_type = self.store.er_type
        return [block.cardinality(er_type) for block in self.blocks]

    def aggregate_cardinality(self) -> int:
        """||B|| - total comparisons entailed by the collection."""
        return sum(self.cardinalities())

    def mean_block_size(self) -> float:
        """Average |b| over the collection."""
        if not self.blocks:
            return 0.0
        return sum(block.size for block in self.blocks) / len(self.blocks)

    def comparisons(self) -> Iterator[Comparison]:
        """Every comparison of every block, in block order, with repeats."""
        er_type = self.store.er_type
        for block in self.blocks:
            yield from block.comparisons(er_type)

    def distinct_pairs(self) -> set[tuple[int, int]]:
        """The deduplicated candidate pair set (batch ER's search space)."""
        er_type = self.store.er_type
        pairs: set[tuple[int, int]] = set()
        for block in self.blocks:
            for comparison in block.comparisons(er_type):
                pairs.add(comparison.pair)
        return pairs

    # -- transformation --------------------------------------------------------

    def filtered(self, predicate: Callable[[Block], bool]) -> "BlockCollection":
        """A new collection with only the blocks satisfying ``predicate``."""
        return BlockCollection(
            (block for block in self.blocks if predicate(block)),
            self.store,
        )

    def assign_block_ids(self) -> None:
        """Stamp each block with its current position (used after scheduling)."""
        for index, block in enumerate(self.blocks):
            block.block_id = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockCollection({len(self.blocks)} blocks)"


def drop_singleton_blocks(collection: BlockCollection) -> BlockCollection:
    """Remove blocks that yield no comparison (size < 2 or single-source)."""
    cardinalities = collection.cardinalities()
    return BlockCollection(
        (
            block
            for block, cardinality in zip(collection.blocks, cardinalities)
            if cardinality > 0
        ),
        collection.store,
    )

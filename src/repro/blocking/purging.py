"""Block Purging [12] - step (2) of the Token Blocking workflow.

Discards over-populated blocks whose keys behave like stop words: a block
containing more than ``max_profile_ratio`` (paper: 10%) of the input
profiles carries essentially no matching evidence while dominating the
comparison budget.
"""

from __future__ import annotations

from repro.blocking.base import BlockCollection


class BlockPurging:
    """Drop blocks larger than a fraction of the profile collection.

    Parameters
    ----------
    max_profile_ratio:
        Blocks with more than ``ratio * |P|`` profiles are discarded.
        The paper uses 0.1 ("involving more than 10% of the input
        profiles").
    """

    def __init__(self, max_profile_ratio: float = 0.1) -> None:
        if not 0.0 < max_profile_ratio <= 1.0:
            raise ValueError("max_profile_ratio must be in (0, 1]")
        self.max_profile_ratio = max_profile_ratio

    def apply(self, collection: BlockCollection) -> BlockCollection:
        """A new collection without the stop-word blocks."""
        limit = self.max_profile_ratio * len(collection.store)
        # One direct pass over the id tuples; ``block.size`` is a
        # property call per block, measurable on 10^5-block collections.
        return BlockCollection(
            (block for block in collection.blocks if len(block.ids) <= limit),
            collection.store,
        )

"""The Token Blocking workflow used by the equality-based methods.

Section 7 ("Parameter configuration") fixes the block-building pipeline for
PBS and PPS:

1. schema-agnostic Standard (Token) Blocking - a block per attribute-value
   token appearing in at least two profiles;
2. Block Purging - drop blocks with more than 10% of the input profiles
   (stop-word keys);
3. Block Filtering - retain every profile in 80% of its smallest blocks;
4. edge weighting on the Blocking Graph (ARCS by default) - performed
   lazily by the progressive methods via the Profile Index.

This module wires steps 1-3 into one call so that every consumer uses the
exact same pipeline.
"""

from __future__ import annotations

from repro.blocking.base import BlockCollection, drop_singleton_blocks
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.core.profiles import ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer
from repro.registry import blocking_schemes


def blocking_workflow(
    store: ProfileStore,
    scheme: str = "token",
    purge_ratio: float | None = 0.1,
    filter_ratio: float | None = 0.8,
    **scheme_kwargs,
) -> BlockCollection:
    """Any registered blocking scheme -> Purging -> Filtering.

    The generalized form of :func:`token_blocking_workflow`: the block
    builder is resolved from the shared registry ("token", "standard",
    "suffix", or any user-registered scheme exposing ``build(store)``),
    then the paper's purge/filter steps apply uniformly.  ``None``
    disables a step; ``scheme_kwargs`` go to the builder's constructor.
    """
    builder = blocking_schemes.build(scheme, **scheme_kwargs)
    blocks = builder.build(store)
    if purge_ratio is not None:
        blocks = BlockPurging(purge_ratio).apply(blocks)
    if filter_ratio is not None:
        blocks = BlockFiltering(filter_ratio).apply(blocks)
    return drop_singleton_blocks(blocks)


def token_blocking_workflow(
    store: ProfileStore,
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    purge_ratio: float | None = 0.1,
    filter_ratio: float | None = 0.8,
) -> BlockCollection:
    """Token Blocking -> Block Purging -> Block Filtering.

    Parameters
    ----------
    store:
        The profile collection(s) to block.
    tokenizer:
        Attribute-value tokenizer shared by all steps.
    purge_ratio:
        Block Purging threshold (paper: 0.1).  ``None`` skips the step.
    filter_ratio:
        Block Filtering ratio (paper: 0.8).  ``None`` skips the step.

    Returns
    -------
    BlockCollection
        Redundancy-positive blocks ready for the Blocking Graph methods.
    """
    return blocking_workflow(
        store,
        scheme="token",
        purge_ratio=purge_ratio,
        filter_ratio=filter_ratio,
        tokenizer=tokenizer,
    )

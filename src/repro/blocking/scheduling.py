"""Block Scheduling - ordering blocks by duplicate likelihood.

PBS (Section 5.2.1) generalizes Block Scheduling [1] with a weighting that
works for both Clean-clean and Dirty ER: a block's weight is inversely
proportional to its cardinality (1/||b||), because small blocks come from
distinctive keys and are most likely to contain duplicates.  Blocks are
processed in non-decreasing cardinality; after sorting, a block's id equals
its position, which is what makes the LeCoBI repeated-comparison test work.
"""

from __future__ import annotations

from repro.blocking.base import BlockCollection


def block_scheduling(collection: BlockCollection) -> BlockCollection:
    """Sort blocks by ascending cardinality and stamp positional ids.

    Ties are broken by block key so runs are deterministic (the paper notes
    any permutation of equal-cardinality blocks leaves the result
    unchanged).  The returned collection shares the Block objects but owns
    the new ordering; each block's ``block_id`` is its position in it.
    """
    blocks = collection.blocks
    cardinalities = collection.cardinalities()
    order = sorted(
        range(len(blocks)),
        key=lambda idx: (cardinalities[idx], blocks[idx].key),
    )
    scheduled = BlockCollection((blocks[idx] for idx in order), collection.store)
    scheduled.assign_block_ids()
    return scheduled


def block_weight(cardinality: int) -> float:
    """The PBS block weight: inverse cardinality (1 / ||b||)."""
    if cardinality <= 0:
        return 0.0
    return 1.0 / cardinality

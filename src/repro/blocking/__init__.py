"""Blocking substrate: blocks, builders and block-collection transforms."""

from repro.blocking.base import Block, BlockCollection, drop_singleton_blocks
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.scheduling import block_scheduling, block_weight
from repro.blocking.standard_blocking import (
    KeyFunction,
    StandardBlocking,
    keyed_profiles,
    soundex,
)
from repro.blocking.suffix_arrays import (
    SuffixArraysBlocking,
    SuffixForest,
    SuffixNode,
)
from repro.blocking.token_blocking import TokenBlocking
from repro.blocking.workflow import blocking_workflow, token_blocking_workflow

__all__ = [
    "Block",
    "BlockCollection",
    "drop_singleton_blocks",
    "BlockFiltering",
    "BlockPurging",
    "block_scheduling",
    "block_weight",
    "KeyFunction",
    "StandardBlocking",
    "keyed_profiles",
    "soundex",
    "SuffixArraysBlocking",
    "SuffixForest",
    "SuffixNode",
    "TokenBlocking",
    "blocking_workflow",
    "token_blocking_workflow",
]

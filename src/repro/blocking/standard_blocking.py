"""Schema-based Standard Blocking [19] and blocking-key definitions.

The schema-based baseline (PSN) needs one blocking key per profile derived
from selected attributes - e.g. the census configuration from the paper's
footnote 6: "Soundex encoded surnames concatenated to initials and
zipcodes".  This module provides:

* :class:`KeyFunction` - composable schema-based key builders, including a
  Soundex encoder (the classic Russell/odell variant used by record-linkage
  toolkits such as FEBRL, which the paper points to for its keys);
* :class:`StandardBlocking` - one block per distinct key value.
"""

from __future__ import annotations

from typing import Callable

from repro.blocking.base import Block, BlockCollection
from repro.core.profiles import EntityProfile, ERType, ProfileStore
from repro.registry import blocking_schemes

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}


def soundex(word: str, length: int = 4) -> str:
    """Russell Soundex code of ``word`` (letter + digits, padded with 0).

    Non-alphabetic characters are ignored; an empty input encodes to
    ``"0" * length`` so that keys remain fixed-width.
    """
    letters = [ch for ch in word.lower() if ch.isalpha()]
    if not letters:
        return "0" * length
    first = letters[0]
    encoded = [first.upper()]
    previous = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        code = _SOUNDEX_CODES.get(ch, "")
        if code and code != previous:
            encoded.append(code)
        if ch not in "hw":  # h/w do not reset the previous-code rule
            previous = code
        if len(encoded) == length:
            break
    return "".join(encoded).ljust(length, "0")


class KeyFunction:
    """A schema-based blocking key: profile -> string.

    Built from a sequence of extractors so that key definitions read like
    the paper's: ``KeyFunction.concat(soundex_of("surname"),
    prefix_of("name", 2), attribute("zipcode"))``.
    """

    def __init__(self, fn: Callable[[EntityProfile], str], name: str = "key") -> None:
        self._fn = fn
        self.name = name

    def __call__(self, profile: EntityProfile) -> str:
        return self._fn(profile)

    # -- building blocks ---------------------------------------------------

    @staticmethod
    def attribute(name: str) -> "KeyFunction":
        """The (first) value of an attribute, lowercased."""
        return KeyFunction(lambda p: p.value(name).lower().strip(), f"attr:{name}")

    @staticmethod
    def prefix_of(name: str, length: int) -> "KeyFunction":
        """The first ``length`` characters of an attribute value."""
        return KeyFunction(
            lambda p: p.value(name).lower().strip()[:length],
            f"prefix{length}:{name}",
        )

    @staticmethod
    def soundex_of(name: str) -> "KeyFunction":
        """Soundex code of an attribute value."""
        return KeyFunction(lambda p: soundex(p.value(name)), f"soundex:{name}")

    @staticmethod
    def concat(*parts: "KeyFunction") -> "KeyFunction":
        """Concatenation of several key functions."""
        label = "+".join(part.name for part in parts)
        return KeyFunction(lambda p: "".join(part(p) for part in parts), label)


class StandardBlocking:
    """Schema-based Standard Blocking: one block per distinct key value.

    Profiles whose key is empty are left unindexed (they would otherwise
    all collide in one junk block).
    """

    def __init__(self, key_function: Callable[[EntityProfile], str]) -> None:
        self.key_function = key_function

    def build(self, store: ProfileStore) -> BlockCollection:
        """Group profiles by key; keep blocks yielding >= 1 comparison."""
        buckets: dict[str, list[int]] = {}
        for profile in store:
            key = self.key_function(profile)
            if not key:
                continue
            buckets.setdefault(key, []).append(profile.profile_id)

        cross_source = store.er_type is ERType.CLEAN_CLEAN
        blocks: list[Block] = []
        for key in sorted(buckets):
            ids = buckets[key]
            if len(ids) < 2:
                continue
            block = Block(key, ids, store)
            if cross_source and (not block.left_ids or not block.right_ids):
                continue
            blocks.append(block)
        return BlockCollection(blocks, store)


def keyed_profiles(
    store: ProfileStore,
    key_function: Callable[[EntityProfile], str],
) -> list[tuple[str, int]]:
    """(key, profile_id) pairs for schema-based sorted-neighborhood methods.

    Profiles with empty keys are skipped, mirroring
    :class:`StandardBlocking`.
    """
    pairs = []
    for profile in store:
        key = key_function(profile)
        if key:
            pairs.append((key, profile.profile_id))
    return pairs


blocking_schemes.register(
    "standard", StandardBlocking, aliases=("standard-blocking", "key")
)

"""Suffix Arrays Blocking (SAB) [19,21] and the suffix forest.

SAB tolerates noise at the *start* of blocking keys by indexing every key
under all of its suffixes with at least ``min_length`` characters.  The
suffixes of all keys form a *suffix forest* (Section 4.2): one tree per
distinct shortest suffix, where the parent of suffix ``s`` is ``s[1:]``.
Longer suffixes sit deeper; a leaf at the lowest layer is the longest
original key.

The schema-agnostic variant used by SA-PSAB treats every attribute-value
token as a key.  SA-PSAB then processes the forest "leaves first, root
last": blocks of longer suffixes (more specific evidence) are resolved
before blocks of shorter ones, and within a layer smaller blocks first.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.blocking.base import Block, BlockCollection
from repro.core.profiles import ERType, ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer, suffixes
from repro.registry import blocking_schemes


class SuffixNode:
    """A node of the suffix forest: one suffix and its block of profiles."""

    __slots__ = ("suffix", "block", "children")

    def __init__(self, suffix: str, block: Block) -> None:
        self.suffix = suffix
        self.block = block
        self.children: list["SuffixNode"] = []

    @property
    def depth(self) -> int:
        """Layer of the node - the suffix length."""
        return len(self.suffix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SuffixNode({self.suffix!r}, size={self.block.size})"


class SuffixForest:
    """All suffix trees of a profile collection's blocking keys."""

    def __init__(self, nodes: dict[str, SuffixNode], min_length: int) -> None:
        self.nodes = nodes
        self.min_length = min_length
        self.roots: list[SuffixNode] = []
        for suffix, node in nodes.items():
            parent_key = suffix[1:]
            parent = nodes.get(parent_key)
            if len(suffix) > min_length and parent is not None:
                parent.children.append(node)
            else:
                self.roots.append(node)
        # Deterministic child/root ordering.
        self.roots.sort(key=lambda n: n.suffix)
        for node in nodes.values():
            node.children.sort(key=lambda n: n.suffix)

    def __len__(self) -> int:
        return len(self.nodes)

    def leaves_first_order(self, er_type: ERType) -> list[SuffixNode]:
        """Nodes ordered for progressive processing (Section 4.2).

        Deeper layers (longer suffixes) first; within a layer, blocks with
        fewer comparisons first; final tie-break on the suffix itself for
        determinism.
        """
        return sorted(
            self.nodes.values(),
            key=lambda node: (
                -node.depth,
                node.block.cardinality(er_type),
                node.suffix,
            ),
        )

    def layers(self) -> dict[int, list[SuffixNode]]:
        """Nodes grouped by depth (suffix length)."""
        grouped: dict[int, list[SuffixNode]] = {}
        for node in self.nodes.values():
            grouped.setdefault(node.depth, []).append(node)
        for layer in grouped.values():
            layer.sort(key=lambda n: n.suffix)
        return grouped


class SuffixArraysBlocking:
    """Schema-agnostic Suffix Arrays Blocking.

    Parameters
    ----------
    min_length:
        l_min - the minimum suffix length (SA-PSAB's only parameter).
    tokenizer:
        Token extractor; every distinct attribute-value token of a profile
        is a blocking key.
    max_block_size:
        Optional classic-SAB cap: suffixes indexing more than this many
        profiles are dropped.  ``None`` (the default) reproduces the
        paper's uncapped SA-PSAB, whose huge top-layer blocks are exactly
        why it fails to scale (Section 7.2).
    """

    def __init__(
        self,
        min_length: int = 3,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        max_block_size: int | None = None,
    ) -> None:
        if min_length < 1:
            raise ValueError("min_length must be positive")
        self.min_length = min_length
        self.tokenizer = tokenizer
        self.max_block_size = max_block_size

    # -- construction ----------------------------------------------------------

    def _suffix_buckets(self, store: ProfileStore) -> dict[str, list[int]]:
        buckets: dict[str, dict[int, None]] = {}
        for profile in store:
            for token in self.tokenizer.distinct_profile_tokens(profile):
                for suffix in suffixes(token, self.min_length):
                    buckets.setdefault(suffix, {}).setdefault(profile.profile_id)
        return {suffix: list(ids) for suffix, ids in buckets.items()}

    def build_forest(self, store: ProfileStore) -> SuffixForest:
        """The full suffix forest with one block per valid suffix."""
        cross_source = store.er_type is ERType.CLEAN_CLEAN
        nodes: dict[str, SuffixNode] = {}
        for suffix, ids in self._suffix_buckets(store).items():
            if len(ids) < 2:
                continue
            if self.max_block_size is not None and len(ids) > self.max_block_size:
                continue
            block = Block(suffix, ids, store)
            if cross_source and (not block.left_ids or not block.right_ids):
                continue
            nodes[suffix] = SuffixNode(suffix, block)
        return SuffixForest(nodes, self.min_length)

    def build(self, store: ProfileStore) -> BlockCollection:
        """Flat block collection in progressive (leaves-first) order."""
        forest = self.build_forest(store)
        ordered = forest.leaves_first_order(store.er_type)
        return BlockCollection((node.block for node in ordered), store)


def forest_statistics(
    forest: SuffixForest, er_type: ERType
) -> dict[str, float]:
    """Summary statistics of a forest (used by tests and benchmarks)."""
    if not forest.nodes:
        return {"nodes": 0, "roots": 0, "max_depth": 0, "comparisons": 0}
    depths: Sequence[int] = [node.depth for node in forest.nodes.values()]
    comparisons = sum(
        node.block.cardinality(er_type) for node in forest.nodes.values()
    )
    return {
        "nodes": len(forest.nodes),
        "roots": len(forest.roots),
        "max_depth": max(depths),
        "comparisons": comparisons,
    }


def iter_forest_blocks(
    forest: SuffixForest, er_type: ERType
) -> Iterator[Block]:
    """Blocks in progressive order (convenience wrapper)."""
    for node in forest.leaves_first_order(er_type):
        yield node.block


blocking_schemes.register(
    "suffix", SuffixArraysBlocking, aliases=("suffix-arrays", "sa")
)

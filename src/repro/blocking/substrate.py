"""The blocking substrate - one tokenization sweep per resolution session.

Every consumer of the Token Blocking workflow (the equality-based methods
PPS/PBS, the incremental ONLINE baseline, the similarity-based PSN methods
and Meta-blocking pruning) starts from the same raw material: the stream
of ``(token, profile_id)`` pairs produced by tokenizing the store once.
Before this module each consumer re-tokenized on its own - the dominant
cost of the fast path once emission was vectorized.

A *substrate* is built once per session through the backend seam
(:meth:`repro.contracts.Backend.blocking_substrate`) and caches that
single sweep, deriving every downstream structure from it lazily:

* :meth:`ReferenceSubstrate.blocks` - Token Blocking -> Block Purging ->
  Block Filtering -> singleton drop, byte-identical to
  :func:`repro.blocking.workflow.token_blocking_workflow`;
* :meth:`ReferenceSubstrate.profile_index` - the reference
  :class:`~repro.metablocking.profile_index.ProfileIndex` over the final
  blocks in schedule or alphabetical processing order;
* :meth:`ReferenceSubstrate.neighbor_list` - the schema-agnostic
  :class:`~repro.neighborlist.neighbor_list.NeighborList`, which by
  design sees the *unpurged, unfiltered* pair stream (the PSN methods
  operate on every distinct profile token).

This module is the python backend's implementation; the array-native
equivalent lives in :mod:`repro.engine.substrate` and the sharded build
in :mod:`repro.parallel.substrate`.  All three satisfy
:class:`repro.contracts.BlockingSubstrate` and their structures are
bit-identical (parity-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.blocking.base import BlockCollection, drop_singleton_blocks
from repro.blocking.filtering import BlockFiltering
from repro.blocking.purging import BlockPurging
from repro.blocking.scheduling import block_scheduling
from repro.blocking.token_blocking import TokenBlocking
from repro.core.profiles import ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer, token_stream
from repro.neighborlist.neighbor_list import NeighborList

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metablocking.profile_index import ProfileIndex

#: The two processing orders a substrate serves indexes in.
SUBSTRATE_ORDERS: tuple[str, ...] = ("schedule", "alpha")


@dataclass(frozen=True)
class SubstrateSpec:
    """The workflow knobs one substrate is built for.

    Mirrors :func:`~repro.blocking.workflow.token_blocking_workflow`:
    ``purge_ratio``/``filter_ratio`` of ``None`` skip that step.  The
    Neighbor List ignores both ratios by construction.
    """

    tokenizer: Tokenizer = DEFAULT_TOKENIZER
    purge_ratio: float | None = 0.1
    filter_ratio: float | None = 0.8


def check_order(order: str) -> str:
    """Validate a processing-order name (shared by all substrates)."""
    if order not in SUBSTRATE_ORDERS:
        raise ValueError(
            f"unknown substrate order {order!r}; expected one of "
            f"{SUBSTRATE_ORDERS}"
        )
    return order


class ReferenceSubstrate:
    """The python backend's blocking substrate (reference semantics).

    Caches the raw ``(token, profile_id)`` pairs of one tokenization
    sweep; every derived structure replays the cached pairs instead of
    touching the store again.  ``sweeps`` counts actual sweeps - the
    single-build regression test asserts it never exceeds 1 per session.
    """

    #: Reference structures, not CSR arrays: vectorized backends that
    #: receive this substrate fall back to materialized blocks.
    vectorized = False

    def __init__(self, store: ProfileStore, spec: SubstrateSpec) -> None:
        self.store = store
        self.spec = spec
        self.sweeps = 0
        self._pairs: list[tuple[str, int]] | None = None
        self._blocks: BlockCollection | None = None
        self._collections: dict[str, BlockCollection] = {}
        self._indexes: dict[str, Any] = {}
        self._neighbor_lists: dict[tuple[str, int | None], NeighborList] = {}

    # -- the single sweep --------------------------------------------------

    def token_pairs(self) -> list[tuple[str, int]]:
        """The ``(token, profile_id)`` pairs of the cached sweep.

        Profile-major, distinct tokens per profile in first-appearance
        order - exactly :func:`repro.core.tokenization.token_stream`.
        """
        if self._pairs is None:
            self.sweeps += 1
            self._pairs = list(token_stream(self.store, self.spec.tokenizer))
        return self._pairs

    # -- derived structures ------------------------------------------------

    def blocks(self) -> BlockCollection:
        """The blocked collection after purging/filtering (workflow order).

        Identical to ``token_blocking_workflow(store, tokenizer,
        purge_ratio, filter_ratio)`` - same classes, same order - but
        grouping the cached pairs instead of re-tokenizing.  The
        collection is cached; consumers share its ``Block`` objects.
        """
        if self._blocks is None:
            collection = TokenBlocking.build_from_pairs(
                self.token_pairs(), self.store
            )
            if self.spec.purge_ratio is not None:
                collection = BlockPurging(self.spec.purge_ratio).apply(collection)
            if self.spec.filter_ratio is not None:
                collection = BlockFiltering(self.spec.filter_ratio).apply(
                    collection
                )
            self._blocks = drop_singleton_blocks(collection)
        return self._blocks

    def ordered_blocks(self, order: str = "schedule") -> BlockCollection:
        """The final blocks in processing ``order``, ids stamped.

        ``"schedule"`` is Block Scheduling's ``(cardinality, key)``
        order (PPS/PBS); ``"alpha"`` is alphabetical key order (ONLINE).
        The orders share ``Block`` objects with :meth:`blocks`, so the
        ``block_id`` stamp reflects whichever order was requested last -
        consumers capture ids at index-construction time.
        """
        check_order(order)
        collection = self._collections.get(order)
        if collection is None:
            if order == "schedule":
                collection = block_scheduling(self.blocks())
            else:
                collection = BlockCollection(
                    sorted(self.blocks().blocks, key=lambda block: block.key),
                    self.store,
                )
                collection.assign_block_ids()
            self._collections[order] = collection
        else:
            # Re-stamp: another order (or a pruning run) may have
            # re-assigned the shared blocks' ids since.
            collection.assign_block_ids()
        return collection

    def profile_index(self, order: str = "schedule") -> "ProfileIndex":
        """The reference Profile Index over :meth:`ordered_blocks`."""
        check_order(order)
        index = self._indexes.get(order)
        if index is None:
            from repro.metablocking.profile_index import ProfileIndex

            index = ProfileIndex(self.ordered_blocks(order))
            self._indexes[order] = index
        return index  # type: ignore[no-any-return]

    def neighbor_list(
        self, tie_order: str = "insertion", seed: int | None = 0
    ) -> NeighborList:
        """The schema-agnostic Neighbor List from the cached pairs.

        Identical to ``NeighborList.schema_agnostic(store, tokenizer,
        tie_order, seed)``: the full pair stream, no purging and no
        filtering (count-1 tokens included).
        """
        key = (tie_order, seed)
        cached = self._neighbor_lists.get(key)
        if cached is None:
            cached = NeighborList.from_key_pairs(
                self.token_pairs(), tie_order=tie_order, seed=seed
            )
            self._neighbor_lists[key] = cached
        return cached

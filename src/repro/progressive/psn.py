"""PSN - schema-based Progressive Sorted Neighborhood [4, 5].

The state-of-the-art baseline the paper compares against (Section 2).  One
schema-based blocking key per profile; profiles sorted alphabetically by
key form the (redundancy-free) Neighbor List; a sliding window of
iteratively incremented size defines the comparison order: first all pairs
at distance 1, then distance 2, and so on.

Because every profile appears exactly once in the list, PSN never repeats
a comparison.  Its effectiveness hinges entirely on the discriminativeness
of the chosen key - the schema knowledge the schema-agnostic methods do
away with.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.blocking.standard_blocking import keyed_profiles
from repro.core.comparisons import Comparison
from repro.core.profiles import EntityProfile, ProfileStore
from repro.neighborlist.neighbor_list import NeighborList
from repro.progressive.base import ProgressiveMethod, register_method


@register_method("PSN")
class PSN(ProgressiveMethod):
    """Schema-based Progressive Sorted Neighborhood.

    Parameters
    ----------
    store:
        The profiles to resolve.
    key_function:
        Schema-based blocking key (see
        :class:`repro.blocking.KeyFunction`).  Required - this *is* the
        schema knowledge.
    tie_order, seed:
        Order of profiles sharing a key (coincidental proximity); see
        :class:`repro.neighborlist.NeighborList`.
    max_window:
        Optional cap on the window size (None - grow to list size).
    """

    name = "PSN"

    def __init__(
        self,
        store: ProfileStore,
        key_function: Callable[[EntityProfile], str],
        tie_order: str = "random",
        seed: int | None = 0,
        max_window: int | None = None,
    ) -> None:
        super().__init__(store)
        self.key_function = key_function
        self.tie_order = tie_order
        self.seed = seed
        self.max_window = max_window
        self.neighbor_list: NeighborList | None = None

    def _setup(self) -> None:
        self.neighbor_list = NeighborList.from_key_pairs(
            keyed_profiles(self.store, self.key_function),
            tie_order=self.tie_order,
            seed=self.seed,
        )

    def _emit(self) -> Iterator[Comparison]:
        assert self.neighbor_list is not None
        entries = self.neighbor_list.entries
        size = len(entries)
        limit = size if self.max_window is None else min(size, self.max_window + 1)
        for window in range(1, limit):
            for position in range(size - window):
                i = entries[position]
                j = entries[position + window]
                if self.store.valid_comparison(i, j):
                    # 1/window: larger windows carry weaker evidence.
                    yield Comparison.make(i, j, 1.0 / window)

"""SA-PSN - naive Schema-Agnostic Progressive Sorted Neighborhood (§4.1).

Combines PSN's incrementally-sized sliding window with the schema-agnostic
Neighbor List of [7]: every distinct attribute-value token of a profile
contributes one position.  Parameter-free, cheap to build - and naive:

* the same pair may be emitted many times (a pair adjacent in several
  token runs co-occurs at the same distance repeatedly), and
* the order inside equal-key runs is coincidental.

Windows must skip same-profile occurrences (a profile with two
alphabetically consecutive tokens) and, for Clean-clean ER, same-source
pairs - exactly the validity rule of Section 4.1.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.comparisons import Comparison
from repro.core.profiles import ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer
from repro.neighborlist.neighbor_list import NeighborList
from repro.progressive.base import ProgressiveMethod, register_method


@register_method("SAPSN")
class SAPSN(ProgressiveMethod):
    """Schema-agnostic PSN over the token Neighbor List.

    Parameters
    ----------
    store:
        The profiles to resolve.
    tokenizer:
        Attribute-value tokenizer providing the blocking keys.
    tie_order, seed:
        Order inside equal-token runs ("insertion" or "random").
    max_window:
        Optional window-size cap (None - grow to list size).
    """

    name = "SA-PSN"

    def __init__(
        self,
        store: ProfileStore,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        tie_order: str = "random",
        seed: int | None = 0,
        max_window: int | None = None,
    ) -> None:
        super().__init__(store)
        self.tokenizer = tokenizer
        self.tie_order = tie_order
        self.seed = seed
        self.max_window = max_window
        self.neighbor_list: NeighborList | None = None

    def _setup(self) -> None:
        self.neighbor_list = NeighborList.schema_agnostic(
            self.store,
            tokenizer=self.tokenizer,
            tie_order=self.tie_order,
            seed=self.seed,
        )

    def _emit(self) -> Iterator[Comparison]:
        assert self.neighbor_list is not None
        entries = self.neighbor_list.entries
        size = len(entries)
        limit = size if self.max_window is None else min(size, self.max_window + 1)
        for window in range(1, limit):
            for position in range(size - window):
                i = entries[position]
                j = entries[position + window]
                if self.store.valid_comparison(i, j):
                    yield Comparison.make(i, j, 1.0 / window)

"""LS-PSN - Local Schema-Agnostic Progressive Sorted Neighborhood (§5.1.1).

LS-PSN replaces SA-PSN's blind window scan with a *weighted* Neighbor
List: for the current window size w, every pair co-occurring at distance w
is scored with a co-occurrence weighting scheme (RCF by default) and the
window's comparisons are emitted from the highest weight to the lowest
(Algorithms 1 and 2 of the paper).  The order is *local* to each window:
when a window's Comparison List drains, the window grows by one and the
weighting repeats - so a pair co-occurring at several distances can be
re-emitted in later windows (the drawback GS-PSN removes).

Backends: ``backend="python"`` (default) probes the Position Index
profile by profile; ``backend="numpy"`` slides the whole Neighbor List
at once - window w's events are the aligned pairs
``(entries[:-w], entries[w:])`` - and scores them in one grouped array
pass (:mod:`repro.engine.similarity`).  Same stream either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from repro.core.comparisons import Comparison, ComparisonList
from repro.core.profiles import ERType, ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer
from repro.neighborlist.neighbor_list import NeighborList
from repro.neighborlist.position_index import PositionIndex
from repro.engine import get_backend
from repro.neighborlist.rcf import NeighborWeighting, make_neighbor_weighting
from repro.progressive.base import ProgressiveMethod, register_method

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.contracts import BlockingSubstrate
    from repro.engine import Backend
    from repro.engine.similarity import ArrayPSNCore


class _SimilarityBase(ProgressiveMethod):
    """Shared machinery of LS-PSN and GS-PSN: NL, Position Index, scoring."""

    def __init__(
        self,
        store: ProfileStore,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        weighting: str | NeighborWeighting = "RCF",
        tie_order: str = "random",
        seed: int | None = 0,
        backend: "str | Backend" = "python",
        substrate: "BlockingSubstrate | None" = None,
    ) -> None:
        super().__init__(store)
        self.tokenizer = tokenizer
        self.weighting = (
            weighting
            if isinstance(weighting, NeighborWeighting)
            else make_neighbor_weighting(weighting)
        )
        self.backend = get_backend(backend).require()
        self.tie_order = tie_order
        self.seed = seed
        self._substrate = substrate
        self.neighbor_list: NeighborList | None = None
        self.position_index: PositionIndex | None = None
        self._scan_ids: list[int] = []
        self._core: "ArrayPSNCore | None" = None

    def _build_structures(self) -> None:
        # The Neighbor List comes from the session substrate's cached
        # tokenization sweep (by design it sees the unpurged, unfiltered
        # pair stream - the substrate's ratios never apply to it).
        substrate = self._substrate
        if substrate is None:
            from repro.blocking.substrate import SubstrateSpec

            substrate = self.backend.blocking_substrate(
                self.store, SubstrateSpec(tokenizer=self.tokenizer)
            )
            self._substrate = substrate
        self.neighbor_list = substrate.neighbor_list(self.tie_order, self.seed)
        if self.backend.vectorized:
            core = self.backend.psn_core(
                self.neighbor_list, self.store, self.weighting
            )
            self._core = core
            self.position_index = core.position_index  # type: ignore[assignment]
            return
        self.position_index = PositionIndex(self.neighbor_list)
        # Dirty ER counts each pair from the larger id's side (the paper's
        # "j < i" check); Clean-clean iterates source-0 profiles and admits
        # source-1 neighbors only.
        if self.store.er_type is ERType.CLEAN_CLEAN:
            self._scan_ids = [
                pid
                for pid in self.position_index.indexed_profiles()
                if self.store.source_of(pid) == 0
            ]
        else:
            self._scan_ids = self.position_index.indexed_profiles()

    def _valid_neighbor(self, i: int, j: int) -> bool:
        if self.store.er_type is ERType.CLEAN_CLEAN:
            return self.store.source_of(j) == 1
        return j < i

    def _neighbor_frequencies(
        self, profile_id: int, distances: Sequence[int]
    ) -> dict[int, int]:
        """Co-occurrence counts of ``profile_id``'s valid neighbors.

        Looks ``distance`` positions left and right of every position of
        the profile, for each distance - Algorithm 1 lines 8-16.
        """
        assert self.neighbor_list is not None and self.position_index is not None
        entries = self.neighbor_list.entries
        size = len(entries)
        frequency: dict[int, int] = {}
        for position in self.position_index.positions_of(profile_id):
            for distance in distances:
                after = position + distance
                if after < size:
                    neighbor = entries[after]
                    if self._valid_neighbor(profile_id, neighbor):
                        frequency[neighbor] = frequency.get(neighbor, 0) + 1
                before = position - distance
                if before >= 0:
                    neighbor = entries[before]
                    if self._valid_neighbor(profile_id, neighbor):
                        frequency[neighbor] = frequency.get(neighbor, 0) + 1
        return frequency

    def _score_neighbors(
        self, profile_id: int, frequency: dict[int, int]
    ) -> Iterator[Comparison]:
        assert self.position_index is not None
        for neighbor, count in frequency.items():
            weight = self.weighting.weight(
                count, profile_id, neighbor, self.position_index
            )
            yield Comparison.make(profile_id, neighbor, weight)


@register_method("LSPSN")
class LSPSN(_SimilarityBase):
    """Local schema-agnostic PSN: per-window weighting and emission.

    Parameters
    ----------
    store:
        The profiles to resolve.
    tokenizer:
        Attribute-value tokenizer providing the blocking keys.
    weighting:
        Co-occurrence weighting scheme name or instance (default RCF).
    tie_order, seed:
        Order inside equal-token runs.
    max_window:
        Optional window cap; None grows the window to the list size
        (Algorithm 2's termination condition).
    backend:
        Execution backend: ``"python"`` (reference) or ``"numpy"``
        (array window kernels, requires the ``repro[speed]`` extra).
    substrate:
        A pre-built session :class:`~repro.contracts.BlockingSubstrate`
        serving the Neighbor List from its cached tokenization sweep.
    """

    name = "LS-PSN"

    def __init__(
        self,
        store: ProfileStore,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        weighting: str | NeighborWeighting = "RCF",
        tie_order: str = "random",
        seed: int | None = 0,
        max_window: int | None = None,
        backend: str = "python",
        substrate: "BlockingSubstrate | None" = None,
    ) -> None:
        super().__init__(
            store, tokenizer, weighting, tie_order, seed, backend, substrate
        )
        self.max_window = max_window

    def _setup(self) -> None:
        self._build_structures()

    def window_comparisons(self, window: int) -> ComparisonList:
        """All weighted comparisons of one window size (Alg. 1 lines 5-20)."""
        if self._core is not None:
            return ComparisonList(self._core.window_comparisons((window,)))
        comparisons = ComparisonList()
        for profile_id in self._scan_ids:
            frequency = self._neighbor_frequencies(profile_id, (window,))
            comparisons.extend(self._score_neighbors(profile_id, frequency))
        return comparisons

    def _emit(self) -> Iterator[Comparison]:
        assert self.neighbor_list is not None
        size = len(self.neighbor_list)
        limit = size if self.max_window is None else min(size, self.max_window + 1)
        if self._core is not None:
            for window in range(1, limit):
                yield from self._core.window_comparisons((window,))
            return
        for window in range(1, limit):
            yield from self.window_comparisons(window).drain()

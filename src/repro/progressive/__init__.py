"""Progressive ER methods: the paper's baselines and contributions.

========  ===========  ====================================================
Acronym   Category     Description
========  ===========  ====================================================
PSN       baseline     schema-based Progressive Sorted Neighborhood [4,5]
SA-PSN    naive        schema-agnostic PSN (Section 4.1)
SA-PSAB   naive        progressive Suffix Arrays Blocking (Section 4.2)
LS-PSN    similarity   local weighted Neighbor List (Section 5.1.1)
GS-PSN    similarity   global weighted Neighbor List (Section 5.1.2)
PBS       equality     Progressive Block Scheduling (Section 5.2.1)
PPS       equality     Progressive Profile Scheduling (Section 5.2.2)
========  ===========  ====================================================
"""

from repro.progressive.base import (
    ProgressiveMethod,
    available_methods,
    build_method,
    register_method,
)
from repro.progressive.gs_psn import GSPSN
from repro.progressive.ls_psn import LSPSN
from repro.progressive.pbs import PBS
from repro.progressive.pps import PPS
from repro.progressive.psn import PSN
from repro.progressive.sa_psab import SAPSAB
from repro.progressive.sa_psn import SAPSN

__all__ = [
    "ProgressiveMethod",
    "available_methods",
    "build_method",
    "register_method",
    "PSN",
    "SAPSN",
    "SAPSAB",
    "LSPSN",
    "GSPSN",
    "PBS",
    "PPS",
]

"""PPS - Progressive Profile Scheduling (§5.2.2, Algorithms 5-6).

Entity-centric equality-based method built on the *duplication likelihood*
of individual profiles: the average Blocking Graph edge weight of a
profile's neighborhood.  The initialization phase (Algorithm 5) computes,
in one pass over the Profile Index,

* each profile's duplication likelihood -> the **Sorted Profile List**, and
* each profile's single best comparison -> the initial Comparison List
  (deduplicated via a set).

The emission phase (Algorithm 6) drains the Comparison List; when empty it
pops the next profile from the Sorted Profile List and gathers that
profile's K_max best comparisons into a bounded :class:`SortedStack`,
skipping neighbors already processed (``checkedEntities``) - their most
important comparisons were already emitted, so the remaining ones are
known to be weak.

Faithfulness notes (see DESIGN.md): ``checkedEntities`` persists across
emission calls (required by the paper's Figure 8 walk-through), and K_max
is not specified in the paper - we default to 10 and expose it.  The
optional ``exhaustive`` flag appends a tail phase draining every remaining
distinct comparison so that eventual quality equals batch quality.

Backends: ``backend="python"`` (default) runs the reference dict/heap
implementation; ``backend="numpy"`` runs the same two phases on the CSR
engine (:mod:`repro.engine.equality`) - per-neighborhood array passes and
``argpartition`` top-k - emitting a bit-identical comparison stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.blocking.base import BlockCollection
from repro.blocking.scheduling import block_scheduling
from repro.blocking.substrate import SubstrateSpec
from repro.core.comparisons import Comparison, ComparisonList, SortedStack
from repro.core.profiles import ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer
from repro.engine import get_backend
from repro.metablocking.profile_index import ProfileIndex
from repro.metablocking.weights import WeightingScheme, make_scheme
from repro.progressive.base import ProgressiveMethod, register_method

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.contracts import BlockingSubstrate
    from repro.engine import Backend
    from repro.engine.equality import ArrayPPSCore


@register_method("PPS")
class PPS(ProgressiveMethod):
    """Progressive Profile Scheduling.

    Parameters
    ----------
    store:
        The profiles to resolve.
    weighting:
        Blocking Graph edge weighting scheme (paper default: ARCS).
    k_max:
        Comparisons gathered per scheduled profile during emission.  The
        paper leaves K_max unspecified; the default (None) adapts it to
        the block collection - the average number of block comparisons
        per profile, floored at 10 - so that datasets with large
        equivalence clusters (e.g. cora) are not recall-capped while 1:1
        datasets keep a tight per-profile budget.
    blocks:
        Pre-built redundancy-positive blocks; when None the paper's Token
        Blocking workflow (purging 10%, filtering 80%) is applied via the
        backend's blocking substrate (one tokenization sweep).
    tokenizer, purge_ratio, filter_ratio:
        Workflow knobs (ignored when ``blocks`` or ``substrate`` is given).
    substrate:
        A pre-built session :class:`~repro.contracts.BlockingSubstrate`
        (the :class:`~repro.pipeline.resolver.Resolver` injects its
        shared one so the whole session tokenizes the store exactly
        once).  Ignored when ``blocks`` is given.
    exhaustive:
        Append a tail draining all remaining distinct comparisons, making
        the eventual output identical to batch ER on the same blocks.
    backend:
        Execution backend: ``"python"`` (reference), ``"numpy"`` (CSR
        engine, requires the ``repro[speed]`` extra) or
        ``"numpy-parallel"`` (the CSR engine sharded across worker
        processes; also accepts a configured
        :class:`~repro.parallel.backend.ParallelBackend` instance);
        same stream every way.
    """

    name = "PPS"

    def __init__(
        self,
        store: ProfileStore,
        weighting: str = "ARCS",
        k_max: int | None = None,
        blocks: BlockCollection | None = None,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        purge_ratio: float | None = 0.1,
        filter_ratio: float | None = 0.8,
        exhaustive: bool = False,
        backend: "str | Backend" = "python",
        substrate: "BlockingSubstrate | None" = None,
    ) -> None:
        if k_max is not None and k_max < 1:
            raise ValueError("k_max must be positive")
        super().__init__(store)
        self.weighting_name = weighting
        self.backend = get_backend(backend).require()
        self.k_max = k_max
        self._input_blocks = blocks
        self._substrate = substrate
        self.tokenizer = tokenizer
        self.purge_ratio = purge_ratio
        self.filter_ratio = filter_ratio
        self.exhaustive = exhaustive
        self.profile_index: ProfileIndex | None = None
        self.scheme: WeightingScheme | None = None
        self.sorted_profile_list: list[tuple[int, float]] = []
        self._initial_comparisons: ComparisonList | None = None
        self._core: "ArrayPPSCore | None" = None

    # -- shared neighborhood scan ---------------------------------------------

    def _neighborhood_weights(
        self, profile_id: int, skip: set[int] | None = None
    ) -> dict[int, float]:
        """Raw accumulated edge weights of a profile's valid neighbors."""
        assert self.profile_index is not None and self.scheme is not None
        index = self.profile_index
        scheme = self.scheme
        weights: dict[int, float] = {}
        for block_id in index.blocks_of(profile_id):
            contribution = scheme.contribution(block_id)
            for neighbor in index.collection[block_id].ids:
                if neighbor == profile_id:
                    continue
                if skip is not None and neighbor in skip:
                    continue
                if not self.store.valid_comparison(profile_id, neighbor):
                    continue
                weights[neighbor] = weights.get(neighbor, 0.0) + contribution
        return weights

    # -- initialization phase (Algorithm 5) --------------------------------------

    def _setup(self) -> None:
        blocks = self._input_blocks
        if blocks is None:
            substrate = self._substrate
            if substrate is None:
                substrate = self.backend.blocking_substrate(
                    self.store,
                    SubstrateSpec(
                        tokenizer=self.tokenizer,
                        purge_ratio=self.purge_ratio,
                        filter_ratio=self.filter_ratio,
                    ),
                )
                self._substrate = substrate
            if self.backend.vectorized:
                # The seam consumes the substrate directly: an array
                # substrate serves the CSR index straight from its
                # postings (no Block objects), a reference substrate
                # falls back to materialized blocks inside the seam.
                self._setup_array(substrate)
                return
            if substrate.vectorized:
                self.profile_index = ProfileIndex(
                    block_scheduling(substrate.blocks())
                )
            else:
                # Scheduled index served (and cached) by the substrate -
                # shared with every other consumer of the session.
                self.profile_index = substrate.profile_index("schedule")
        else:
            # Scheduling keeps block ids aligned with PBS (and LeCoBI
            # usable by the exhaustive tail); PPS itself only needs
            # cardinalities.
            scheduled = block_scheduling(blocks)
            if self.backend.vectorized:
                self._setup_array(scheduled)
                return
            self.profile_index = ProfileIndex(scheduled)
        self.scheme = make_scheme(self.weighting_name, self.profile_index)
        if self.k_max is None:
            # Adaptive K_max: average block comparisons per profile (each
            # comparison touches two profiles), clamped to [10, 50].  The
            # lower bound keeps sparse datasets covered; the upper bound
            # stops huge neighborhoods from flooding the emission stream
            # with their low-weight tails.
            population = max(1, len(self.profile_index.indexed_profiles()))
            aggregate = sum(self.profile_index.block_cardinalities)
            self.k_max = max(10, min(50, round(2 * aggregate / population)))

        top_comparisons: dict[tuple[int, int], float] = {}
        profile_list: list[tuple[int, float]] = []
        for profile_id in self.profile_index.indexed_profiles():
            raw_weights = self._neighborhood_weights(profile_id)
            if not raw_weights:
                continue
            best_pair: tuple[int, int] | None = None
            best_weight = float("-inf")
            likelihood = 0.0
            for neighbor, raw in raw_weights.items():
                weight = self.scheme.finalize(profile_id, neighbor, raw)
                likelihood += weight
                if weight > best_weight:
                    best_weight = weight
                    best_pair = Comparison.make(profile_id, neighbor).pair
            likelihood /= len(raw_weights)
            profile_list.append((profile_id, likelihood))
            if best_pair is not None:
                existing = top_comparisons.get(best_pair)
                if existing is None or best_weight > existing:
                    top_comparisons[best_pair] = best_weight

        # Highest duplication likelihood first; ties by id for determinism.
        profile_list.sort(key=lambda item: (-item[1], item[0]))
        self.sorted_profile_list = profile_list

        initial = ComparisonList()
        initial.extend(
            Comparison(i, j, weight) for (i, j), weight in top_comparisons.items()
        )
        self._initial_comparisons = initial

    def _setup_array(
        self, scheduled: "BlockCollection | BlockingSubstrate"
    ) -> None:
        """Initialization on the CSR engine (same phases, array passes).

        The core comes through the backend seam - which accepts either a
        scheduled block collection or a blocking substrate - so the
        sequential ``numpy`` backend and the sharded ``numpy-parallel``
        backend both land in the same emission machinery over
        bit-identical structures.
        """
        core = self.backend.pps_core(scheduled, self.weighting_name, self.k_max)
        self._core = core
        self.k_max = core.k_max
        # API-compatible introspection: the CSR index and a scalar-capable
        # weighting view (the graph) take the reference structures' slots.
        self.profile_index = core.index  # type: ignore[assignment]
        self.scheme = core.graph  # type: ignore[assignment]
        self.sorted_profile_list, self._initial_comparisons = core.init_lists()

    # -- emission phase (Algorithm 6) ---------------------------------------------

    def profile_comparisons(
        self, profile_id: int, checked: set[int]
    ) -> list[Comparison]:
        """The K_max best comparisons of one scheduled profile."""
        assert self.k_max is not None
        if self._core is not None:
            self._core.sync_checked(checked)
            return self._core.profile_topk(profile_id, self.k_max)
        assert self.scheme is not None
        raw_weights = self._neighborhood_weights(profile_id, skip=checked)
        stack = SortedStack()
        for neighbor, raw in raw_weights.items():
            weight = self.scheme.finalize(profile_id, neighbor, raw)
            stack.push(Comparison.make(profile_id, neighbor, weight))
            if len(stack) > self.k_max:
                stack.pop()
        return stack.drain_descending()

    def _emit(self) -> Iterator[Comparison]:
        assert self._initial_comparisons is not None
        emitted: set[tuple[int, int]] | None = set() if self.exhaustive else None

        for comparison in self._initial_comparisons.drain():
            if emitted is not None:
                emitted.add(comparison.pair)
            yield comparison

        if self._core is not None:
            # The whole schedule precomputed in one array pass; identical
            # stream to the per-profile loop below (parity-tested).
            schedule = [pid for pid, _likelihood in self.sorted_profile_list]
            for comparison in self._core.emit_schedule(schedule, self.k_max):
                if emitted is not None:
                    emitted.add(comparison.pair)
                yield comparison
        else:
            checked: set[int] = set()
            for profile_id, _likelihood in self.sorted_profile_list:
                checked.add(profile_id)
                for comparison in self.profile_comparisons(profile_id, checked):
                    if emitted is not None:
                        emitted.add(comparison.pair)
                    yield comparison

        if emitted is not None:
            yield from self._exhaustive_tail(emitted)

    def _exhaustive_tail(
        self, emitted: set[tuple[int, int]]
    ) -> Iterator[Comparison]:
        """Drain every remaining distinct comparison of the blocks."""
        assert self.profile_index is not None and self.scheme is not None
        index = self.profile_index
        er_type = self.store.er_type
        for block in index.collection.blocks:
            for candidate in block.comparisons(er_type):
                if candidate.pair in emitted:
                    continue
                if not index.is_first_encounter(
                    candidate.i, candidate.j, block.block_id
                ):
                    continue
                emitted.add(candidate.pair)
                yield Comparison(
                    candidate.i,
                    candidate.j,
                    self.scheme.weight(candidate.i, candidate.j),
                )

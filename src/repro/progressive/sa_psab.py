"""SA-PSAB - Schema-Agnostic Progressive Suffix Arrays Blocking (§4.2).

Adapts batch Suffix Arrays Blocking [19, 21] to Progressive ER following
the "hierarchy of record partitions" idea of HRP [5, 9]: every attribute-
value token yields all suffixes of at least ``l_min`` characters; blocks of
longer suffixes (deeper forest layers, more specific evidence) are resolved
before blocks of shorter ones; within a layer, smaller blocks first.

``l_min`` is SA-PSAB's only parameter - the paper calls it "probably the
easiest-to-configure HRP or OLR progressive method".  Like SA-PSN it is
naive: comparisons co-occurring in several suffix blocks are re-emitted at
every level, and top-layer blocks of short suffixes can be enormous (the
reason it fails to scale in Section 7.2).
"""

from __future__ import annotations

from typing import Iterator

from repro.blocking.suffix_arrays import SuffixArraysBlocking, SuffixForest
from repro.core.comparisons import Comparison
from repro.core.profiles import ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer
from repro.progressive.base import ProgressiveMethod, register_method


@register_method("SAPSAB")
class SAPSAB(ProgressiveMethod):
    """Progressive suffix-forest processing, leaves first, roots last.

    Parameters
    ----------
    store:
        The profiles to resolve.
    min_length:
        l_min - minimum suffix length (the only parameter).
    tokenizer:
        Attribute-value tokenizer providing the base keys.
    max_block_size:
        Optional cap on suffix-block size (None reproduces the paper).
    """

    name = "SA-PSAB"

    def __init__(
        self,
        store: ProfileStore,
        min_length: int = 3,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        max_block_size: int | None = None,
    ) -> None:
        super().__init__(store)
        self.blocker = SuffixArraysBlocking(
            min_length=min_length,
            tokenizer=tokenizer,
            max_block_size=max_block_size,
        )
        self.forest: SuffixForest | None = None

    def _setup(self) -> None:
        self.forest = self.blocker.build_forest(self.store)

    def _emit(self) -> Iterator[Comparison]:
        assert self.forest is not None
        er_type = self.store.er_type
        for node in self.forest.leaves_first_order(er_type):
            # All comparisons of one block share the same likelihood; the
            # suffix length doubles as the block's weight.
            depth = float(node.depth)
            for comparison in node.block.comparisons(er_type):
                yield Comparison(comparison.i, comparison.j, depth)

"""GS-PSN - Global Schema-Agnostic Progressive Sorted Neighborhood (§5.1.2).

GS-PSN removes LS-PSN's repeated emissions by computing one *global*
execution order for all windows in [1, w_max]: co-occurrence frequencies
are accumulated over the whole window range and every distinct pair is
scored exactly once.  The emission phase then simply drains the global
Comparison List (constant time, no refills).

The trade-off (Table 1): space grows with w_max because all comparisons of
the window range live in memory at once - the reason the paper capped
GS-PSN's comparisons on freebase.

Faithfulness note: the paper describes converting Algorithm 1's line 1
into a loop over window sizes placed around lines 8-19.  Taken literally
that would add one comparison per (neighbor, window) pair, contradicting
the stated goal of eliminating repeats; we accumulate frequencies over the
full range and weight each distinct neighbor once, matching the stated
semantics (see DESIGN.md).

Backends: ``backend="python"`` (default) accumulates per-profile dicts;
``backend="numpy"`` counts the whole window range with shifted-array
events and one grouped pass (:mod:`repro.engine.similarity`), holding
the global order as three flat arrays instead of an object list.  Same
stream either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.comparisons import Comparison, ComparisonList
from repro.core.profiles import ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer
from repro.neighborlist.rcf import NeighborWeighting
from repro.progressive.base import register_method
from repro.progressive.ls_psn import _SimilarityBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.contracts import BlockingSubstrate


@register_method("GSPSN")
class GSPSN(_SimilarityBase):
    """Global schema-agnostic PSN over the window range [1, w_max].

    Parameters
    ----------
    store:
        The profiles to resolve.
    max_window:
        w_max - the window range bound.  The paper uses 20 for the
        structured datasets and 200 for the large heterogeneous ones.
    tokenizer:
        Attribute-value tokenizer providing the blocking keys.
    weighting:
        Co-occurrence weighting scheme name or instance (default RCF).
    tie_order, seed:
        Order inside equal-token runs.
    backend:
        Execution backend: ``"python"`` (reference) or ``"numpy"``
        (array window kernels, requires the ``repro[speed]`` extra).
    substrate:
        A pre-built session :class:`~repro.contracts.BlockingSubstrate`
        serving the Neighbor List from its cached tokenization sweep.
    """

    name = "GS-PSN"

    def __init__(
        self,
        store: ProfileStore,
        max_window: int = 20,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        weighting: str | NeighborWeighting = "RCF",
        tie_order: str = "random",
        seed: int | None = 0,
        backend: str = "python",
        substrate: "BlockingSubstrate | None" = None,
    ) -> None:
        if max_window < 1:
            raise ValueError("max_window must be positive")
        super().__init__(
            store, tokenizer, weighting, tie_order, seed, backend, substrate
        )
        self.max_window = max_window
        self._comparisons: ComparisonList | None = None
        self._window_arrays: tuple | None = None

    def _setup(self) -> None:
        self._build_structures()
        assert self.neighbor_list is not None
        window_range = range(1, min(self.max_window, len(self.neighbor_list)) + 1)
        distances = tuple(window_range)
        if self._core is not None:
            # The global order as flat (i, j, weight) arrays - the whole
            # initialization phase is one grouped array pass.
            self._window_arrays = self._core.window_arrays(distances)
            return
        comparisons = ComparisonList()
        for profile_id in self._scan_ids:
            frequency = self._neighbor_frequencies(profile_id, distances)
            comparisons.extend(self._score_neighbors(profile_id, frequency))
        self._comparisons = comparisons

    def _emit(self) -> Iterator[Comparison]:
        if self._core is not None:
            # Consume the arrays on first emission, mirroring the python
            # path's destructive ComparisonList.drain: a second iteration
            # yields nothing on either backend.
            arrays, self._window_arrays = self._window_arrays, None
            if arrays is not None:
                from repro.engine.topk import iter_comparisons

                yield from iter_comparisons(*arrays)
            return
        assert self._comparisons is not None
        yield from self._comparisons.drain()

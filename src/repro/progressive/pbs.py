"""PBS - Progressive Block Scheduling (§5.2.1, Algorithms 3-4).

Equality-based: blocks from the Token Blocking workflow are scheduled in
non-decreasing cardinality (small, distinctive blocks first - block weight
1/||b||); inside every block, the non-repeated comparisons are ordered by
their Blocking Graph edge weight.  Repeats are detected with the **LeCoBI**
condition on the Profile Index: a comparison is new in block b_k iff k is
the least common block id of its two profiles.

Backends: ``backend="python"`` (default) runs the reference per-pair
merges; ``backend="numpy"`` enumerates all block comparisons as flat
arrays once, turns LeCoBI into one stable argsort over canonical pair
keys and resolves pair weights with a single ``searchsorted`` into the
materialized Blocking Graph (:mod:`repro.engine.equality`) - same
stream, measured multiples faster.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.blocking.base import BlockCollection
from repro.blocking.scheduling import block_scheduling
from repro.blocking.substrate import SubstrateSpec
from repro.core.comparisons import Comparison, ComparisonList
from repro.core.profiles import ProfileStore
from repro.core.tokenization import DEFAULT_TOKENIZER, Tokenizer
from repro.engine import get_backend
from repro.metablocking.profile_index import ProfileIndex
from repro.metablocking.weights import WeightingScheme, make_scheme
from repro.progressive.base import ProgressiveMethod, register_method

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.contracts import BlockingSubstrate
    from repro.engine import Backend
    from repro.engine.equality import ArrayPBSCore


@register_method("PBS")
class PBS(ProgressiveMethod):
    """Progressive Block Scheduling.

    Parameters
    ----------
    store:
        The profiles to resolve.
    weighting:
        Blocking Graph edge weighting scheme (paper default: ARCS).
    blocks:
        Pre-built redundancy-positive blocks; when None the paper's Token
        Blocking workflow (purging 10%, filtering 80%) is applied.
    tokenizer:
        Tokenizer for the default workflow (ignored when ``blocks`` given).
    purge_ratio, filter_ratio:
        Workflow knobs exposed for the ablation benches.
    substrate:
        A pre-built session :class:`~repro.contracts.BlockingSubstrate`
        (the Resolver injects its shared one so the whole session
        tokenizes the store exactly once).  Ignored when ``blocks`` is
        given.
    backend:
        Execution backend: ``"python"`` (reference) or ``"numpy"`` (CSR
        engine, requires the ``repro[speed]`` extra); same stream either
        way.
    """

    name = "PBS"

    def __init__(
        self,
        store: ProfileStore,
        weighting: str = "ARCS",
        blocks: BlockCollection | None = None,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        purge_ratio: float | None = 0.1,
        filter_ratio: float | None = 0.8,
        backend: "str | Backend" = "python",
        substrate: "BlockingSubstrate | None" = None,
    ) -> None:
        super().__init__(store)
        self.weighting_name = weighting
        self.backend = get_backend(backend).require()
        self._input_blocks = blocks
        self._substrate = substrate
        self.tokenizer = tokenizer
        self.purge_ratio = purge_ratio
        self.filter_ratio = filter_ratio
        self.scheduled: BlockCollection | None = None
        self.profile_index: ProfileIndex | None = None
        self.scheme: WeightingScheme | None = None
        self._core: "ArrayPBSCore | None" = None

    def _setup(self) -> None:
        blocks = self._input_blocks
        if blocks is None:
            substrate = self._substrate
            if substrate is None:
                substrate = self.backend.blocking_substrate(
                    self.store,
                    SubstrateSpec(
                        tokenizer=self.tokenizer,
                        purge_ratio=self.purge_ratio,
                        filter_ratio=self.filter_ratio,
                    ),
                )
                self._substrate = substrate
            if self.backend.vectorized:
                # No Block objects on this path: the CSR index comes
                # straight from the substrate's postings; the scheduled
                # collection is never materialized (``self.scheduled``
                # stays None - the emission runs off the core).
                index = self.backend.profile_index(substrate)
                graph = self.backend.blocking_graph(index, self.weighting_name)
                self._core = self.backend.pbs_core(index, graph)
                self.profile_index = index  # type: ignore[assignment]
                self.scheme = graph  # type: ignore[assignment]
                return
            if not substrate.vectorized:
                # Scheduled index served (and cached) by the substrate -
                # shared with every other consumer of the session.
                self.profile_index = substrate.profile_index("schedule")
                self.scheduled = self.profile_index.collection
                self.scheme = make_scheme(
                    self.weighting_name, self.profile_index
                )
                return
            blocks = substrate.blocks()
        self.scheduled = block_scheduling(blocks)
        if self.backend.vectorized:
            index = self.backend.profile_index(self.scheduled)
            graph = self.backend.blocking_graph(index, self.weighting_name)
            self._core = self.backend.pbs_core(index, graph)
            self.profile_index = index  # type: ignore[assignment]
            self.scheme = graph  # type: ignore[assignment]
            return
        self.profile_index = ProfileIndex(self.scheduled)
        self.scheme = make_scheme(self.weighting_name, self.profile_index)

    def block_comparisons(self, block_id: int) -> ComparisonList:
        """New (non-repeated) weighted comparisons of one block.

        Algorithm 3 lines 4-12: LeCoBI filters repeats; survivors get the
        Blocking Graph edge weight of their pair.
        """
        if self._core is not None:
            return ComparisonList(self._core.block_comparisons(block_id))
        assert self.scheduled is not None
        assert self.profile_index is not None and self.scheme is not None
        block = self.scheduled[block_id]
        er_type = self.store.er_type
        comparisons = ComparisonList()
        for candidate in block.comparisons(er_type):
            if not self.profile_index.is_first_encounter(
                candidate.i, candidate.j, block.block_id
            ):
                continue
            weight = self.scheme.weight(candidate.i, candidate.j)
            comparisons.add(Comparison(candidate.i, candidate.j, weight))
        return comparisons

    def _emit(self) -> Iterator[Comparison]:
        if self._core is not None:
            yield from self._core.emit()
            return
        assert self.scheduled is not None
        for block_id in range(len(self.scheduled)):
            yield from self.block_comparisons(block_id).drain()

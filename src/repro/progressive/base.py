"""The two-phase progressive method contract (Section 3.1).

Every progressive method splits into:

* an **initialization phase** - builds the method's data structures and
  produces the overall best comparison; runs exactly once;
* an **emission phase** - returns the next best comparison on each call,
  refilling an internal Comparison List when it runs empty.

:class:`ProgressiveMethod` encodes this as: ``initialize()`` (idempotent,
measurable by the timing harness) plus the iterator protocol /
``next_comparison()`` for emission.  Subclasses implement ``_setup()`` and
the ``_emit()`` generator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterator

from repro.core.comparisons import Comparison
from repro.core.profiles import ProfileStore
from repro.registry import normalize, progressive_methods


class ProgressiveMethod(ABC):
    """Base class for all progressive ER methods.

    Subclasses must set a class-level ``name`` (the acronym used in the
    paper) and implement ``_setup`` (initialization phase) and ``_emit``
    (a generator yielding comparisons in non-increasing estimated matching
    likelihood until the method's search space is exhausted).
    """

    name: str = "abstract"

    def __init__(self, store: ProfileStore) -> None:
        self.store = store
        self._initialized = False
        self._emitter: Iterator[Comparison] | None = None

    # -- initialization phase ------------------------------------------------

    def initialize(self) -> None:
        """Build the method's data structures (idempotent)."""
        if not self._initialized:
            self._setup()
            self._initialized = True

    @abstractmethod
    def _setup(self) -> None:
        """Initialization phase body (runs once)."""

    # -- emission phase --------------------------------------------------------

    @abstractmethod
    def _emit(self) -> Iterator[Comparison]:
        """Yield comparisons from most to least promising."""

    def __iter__(self) -> Iterator[Comparison]:
        self.initialize()
        return self._emit()

    def next_comparison(self) -> Comparison | None:
        """Emit the next best comparison, or None when exhausted.

        Step-wise counterpart of the iterator protocol for callers that
        interleave emissions with their own control flow (e.g. a time
        budget loop).
        """
        if self._emitter is None:
            self._emitter = iter(self)
        return next(self._emitter, None)

    def reset(self) -> None:
        """Forget all emission progress (initialization is kept)."""
        self._emitter = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "initialized" if self._initialized else "fresh"
        return f"{type(self).__name__}({state}, |P|={len(self.store)})"


MethodFactory = Callable[..., ProgressiveMethod]


def register_method(name: str) -> Callable[[type], type]:
    """Class decorator registering a method in the shared registry.

    The canonical spelling is the class's ``name`` attribute (the paper
    acronym, hyphens included); the decorator argument is kept as an
    alias, so both ``"SA-PSN"`` and ``"SAPSN"`` resolve.
    """

    def decorator(cls: type) -> type:
        # Only the class's *own* `name` may define the canonical spelling;
        # an inherited one (subclass of a stock method without a new
        # `name`) must not hijack the parent's registry entry.
        canonical = cls.__dict__.get("name") or name
        aliases = (name,) if normalize(name) != normalize(canonical) else ()
        progressive_methods.register(canonical, cls, aliases=aliases)
        return cls

    return decorator


def available_methods() -> list[str]:
    """Canonical (paper-spelling) acronyms of all registered methods."""
    return progressive_methods.names()


def build_method(name: str, store: ProfileStore, **kwargs) -> ProgressiveMethod:
    """Instantiate a progressive method by its paper acronym.

    Name matching is schema-agnostic about spelling: ``"SA-PSN"``,
    ``"sapsn"`` and ``"sa_psn"`` all resolve to the same method.

    .. deprecated:: 1.4
        Prefer :class:`repro.pipeline.ERPipeline` / :func:`repro.resolve`,
        which add blocking/weighting configuration, budgets and
        evaluation around the same registry.  The shim emits a
        :class:`DeprecationWarning` and produces identical methods; see
        docs/migration.md for the removal timeline.

    Examples
    --------
    >>> from repro.progressive import build_method
    >>> method = build_method("PPS", store, weighting="ARCS")  # doctest: +SKIP
    """
    import warnings

    warnings.warn(
        "build_method() is deprecated; use "
        "ERPipeline().method(name).fit(store) or resolve(...) instead "
        "(identical methods - see docs/migration.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return progressive_methods.build(name, store, **kwargs)

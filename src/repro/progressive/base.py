"""The two-phase progressive method contract (Section 3.1).

Every progressive method splits into:

* an **initialization phase** - builds the method's data structures and
  produces the overall best comparison; runs exactly once;
* an **emission phase** - returns the next best comparison on each call,
  refilling an internal Comparison List when it runs empty.

:class:`ProgressiveMethod` encodes this as: ``initialize()`` (idempotent,
measurable by the timing harness) plus the iterator protocol /
``next_comparison()`` for emission.  Subclasses implement ``_setup()`` and
the ``_emit()`` generator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterator

from repro.core.comparisons import Comparison
from repro.core.profiles import ProfileStore


class ProgressiveMethod(ABC):
    """Base class for all progressive ER methods.

    Subclasses must set a class-level ``name`` (the acronym used in the
    paper) and implement ``_setup`` (initialization phase) and ``_emit``
    (a generator yielding comparisons in non-increasing estimated matching
    likelihood until the method's search space is exhausted).
    """

    name: str = "abstract"

    def __init__(self, store: ProfileStore) -> None:
        self.store = store
        self._initialized = False
        self._emitter: Iterator[Comparison] | None = None

    # -- initialization phase ------------------------------------------------

    def initialize(self) -> None:
        """Build the method's data structures (idempotent)."""
        if not self._initialized:
            self._setup()
            self._initialized = True

    @abstractmethod
    def _setup(self) -> None:
        """Initialization phase body (runs once)."""

    # -- emission phase --------------------------------------------------------

    @abstractmethod
    def _emit(self) -> Iterator[Comparison]:
        """Yield comparisons from most to least promising."""

    def __iter__(self) -> Iterator[Comparison]:
        self.initialize()
        return self._emit()

    def next_comparison(self) -> Comparison | None:
        """Emit the next best comparison, or None when exhausted.

        Step-wise counterpart of the iterator protocol for callers that
        interleave emissions with their own control flow (e.g. a time
        budget loop).
        """
        if self._emitter is None:
            self._emitter = iter(self)
        return next(self._emitter, None)

    def reset(self) -> None:
        """Forget all emission progress (initialization is kept)."""
        self._emitter = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "initialized" if self._initialized else "fresh"
        return f"{type(self).__name__}({state}, |P|={len(self.store)})"


MethodFactory = Callable[..., ProgressiveMethod]

_REGISTRY: dict[str, MethodFactory] = {}


def register_method(name: str) -> Callable[[type], type]:
    """Class decorator registering a method under its paper acronym."""

    def decorator(cls: type) -> type:
        _REGISTRY[name.upper()] = cls
        return cls

    return decorator


def available_methods() -> list[str]:
    """Acronyms of all registered progressive methods."""
    return sorted(_REGISTRY)


def build_method(name: str, store: ProfileStore, **kwargs) -> ProgressiveMethod:
    """Instantiate a progressive method by its paper acronym.

    Examples
    --------
    >>> from repro.progressive import build_method
    >>> method = build_method("PPS", store, weighting="ARCS")  # doctest: +SKIP
    """
    try:
        factory = _REGISTRY[name.upper().replace("-", "")]
    except KeyError:
        raise ValueError(
            f"unknown progressive method {name!r}; available: {available_methods()}"
        ) from None
    return factory(store, **kwargs)

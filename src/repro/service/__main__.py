"""``python -m repro.service``: serve resolution sessions over HTTP.

Examples
--------
Serve on a fixed port with a snapshot directory::

    python -m repro.service --port 8321 --snapshot-dir /tmp/er-snapshots

Serve a custom pipeline spec (the ``to_dict`` JSON of an
:class:`~repro.pipeline.ERPipeline`, e.g. to pick the numpy backend or
set budgets)::

    python -m repro.service --spec pipeline.json

The process prints ``serving on http://HOST:PORT`` once the socket is
bound (the line CI's smoke job waits for) and shuts down cleanly on
SIGINT/SIGTERM: the listener closes, in-flight requests finish, every
session is closed.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
from typing import Sequence

from repro.pipeline.builder import ERPipeline
from repro.service.http import ServiceServer
from repro.service.session import SessionManager


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve progressive entity-resolution sessions over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port (default)"
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="path to a pipeline spec JSON (ERPipeline.to_dict output)",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="default directory for session snapshots",
    )
    return parser


def build_pipeline(
    spec_path: str | None, snapshot_dir: str | None
) -> ERPipeline:
    if spec_path is not None:
        with open(spec_path) as handle:
            pipeline = ERPipeline.from_dict(json.load(handle))
    else:
        pipeline = ERPipeline()
    if pipeline.config.service is None:
        pipeline.serve(snapshot_dir=snapshot_dir)
    elif snapshot_dir is not None:
        pipeline.config.service.snapshot_dir = snapshot_dir
    return pipeline


async def serve(args: argparse.Namespace) -> None:
    manager = SessionManager(build_pipeline(args.spec, args.snapshot_dir))
    server = ServiceServer(manager, host=args.host, port=args.port)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # pragma: no cover
            loop.add_signal_handler(signum, stop.set)
    print(f"serving on http://{args.host}:{server.port}", flush=True)
    try:
        await stop.wait()
    finally:
        await server.stop()
        manager.close()
        print("service stopped", flush=True)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(serve(args))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The asyncio HTTP/1.1 front-end over a :class:`SessionManager`.

Stdlib-only (``asyncio.start_server`` + hand-rolled request parsing).
The JSON API:

====== ================================== ===================================
method path                               action
====== ================================== ===================================
GET    ``/health``                        liveness + session count
GET    ``/metrics``                       service-wide metrics
GET    ``/sessions``                      session names
POST   ``/sessions``                      create (``{"name", "records"?}``)
                                          or restore (``{"name",
                                          "restore": true, "path"?}``)
GET    ``/sessions/{name}``               one session's metrics
DELETE ``/sessions/{name}``               close and forget the session
POST   ``/sessions/{name}/ingest``        ``{"records", "sources"?}``
POST   ``/sessions/{name}/probe``         ``{"records", "sources"?,
                                          "workers"?, "decide"?}``
POST   ``/sessions/{name}/stream``        ``{"limit"}`` - next batch of the
                                          globally ranked stream
POST   ``/sessions/{name}/snapshot``      ``{"path"?}``
====== ================================== ===================================

A client-supplied ``"path"`` (snapshot and restore) is interpreted
*relative to the configured* ``serve(snapshot_dir=...)`` and must
resolve inside it - socket clients can never point the process at
arbitrary filesystem locations.  Free-form paths remain available to
trusted in-process callers through :class:`SessionManager` directly.

Comparisons travel as ``[i, j, weight]`` triples; decided probe results
(``"decide": true``) as ``[i, j, weight, decision, tier, similarity]``
rows.  Errors map onto
status codes by *type*, and the body always carries ``{"error": ...}``
(:class:`~repro.errors.BudgetExceeded` adds its machine-readable
``"reason"`` token):

* 400 - :class:`~repro.errors.ConfigError` / ``ValueError`` / bad JSON
* 404 - unknown session or route (``KeyError``)
* 405 - wrong method on a known route
* 409 - :class:`~repro.errors.SessionClosed`
* 429 - :class:`~repro.errors.BudgetExceeded` (admission rejections)

The dispatch core, :meth:`ServiceApp.handle`, is transport-free; the
in-process client calls it directly, so everything above the socket is
exercised identically with and without TCP.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
from typing import Any

from repro.core.comparisons import Comparison
from repro.errors import BudgetExceeded, ConfigError, SessionClosed
from repro.service.session import SessionManager

#: Largest accepted request body (a blunt guard against unbounded reads).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Caps on the request head (count and total bytes of header lines) -
#: a client streaming endless headers gets a 400, not unbounded memory.
MAX_HEADER_COUNT = 100
MAX_HEADER_BYTES = 64 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _triples(ranked: list[Comparison]) -> list[list[Any]]:
    return [[c.i, c.j, c.weight] for c in ranked]


def _decided(records: list[Any]) -> list[list[Any]]:
    """Decision records as ``[i, j, weight, decision, tier, similarity]``."""
    return [
        [
            r.comparison.i,
            r.comparison.j,
            r.comparison.weight,
            r.decision,
            r.tier,
            r.similarity,
        ]
        for r in records
    ]


class ServiceApp:
    """Transport-free request dispatch over a :class:`SessionManager`."""

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager

    async def handle(
        self, method: str, path: str, body: dict[str, Any] | None
    ) -> tuple[int, dict[str, Any]]:
        """Dispatch one request; returns ``(status, json_payload)``."""
        try:
            return 200, await self._dispatch(method, path, body or {})
        except BudgetExceeded as exc:
            return 429, {"error": str(exc), "reason": exc.reason}
        except SessionClosed as exc:
            return 409, {"error": str(exc)}
        except ConfigError as exc:
            return 400, {"error": str(exc)}
        except KeyError as exc:
            # KeyError repr-quotes its argument; unwrap for the payload.
            (message,) = exc.args or ("not found",)
            return 404, {"error": str(message)}
        except _MethodNotAllowed as exc:
            return 405, {"error": str(exc)}
        except (TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}

    async def _dispatch(
        self, method: str, path: str, body: dict[str, Any]
    ) -> dict[str, Any]:
        parts = [part for part in path.split("/") if part]
        if parts == ["health"]:
            _require(method, "GET")
            return {
                "status": "ok",
                "sessions": len(self.manager.names()),
            }
        if parts == ["metrics"]:
            _require(method, "GET")
            return self.manager.metrics()
        if parts == ["sessions"]:
            if method == "GET":
                return {"sessions": self.manager.names()}
            _require(method, "POST")
            return await self._create(body)
        if len(parts) == 2 and parts[0] == "sessions":
            name = parts[1]
            if method == "GET":
                return self.manager.get(name).metrics()
            _require(method, "DELETE")
            # delete() blocks on the session's lock until in-flight
            # resolver work drains - never run it on the event loop.
            await self.manager.offload(lambda: self.manager.delete(name))
            return {"deleted": name}
        if len(parts) == 3 and parts[0] == "sessions":
            _require(method, "POST")
            return await self._operate(parts[1], parts[2], body)
        raise KeyError(f"no route for {path!r}")

    async def _create(self, body: dict[str, Any]) -> dict[str, Any]:
        name = body.get("name")
        if not isinstance(name, str):
            raise ConfigError("session creation needs a string 'name'")
        # Both branches are blocking work (restore reads and rebuilds a
        # snapshot from disk, create fits the seed batch) - off-load so
        # the event loop keeps serving other connections meanwhile.
        if body.get("restore"):
            path = self._client_path(body.get("path"))
            session = await self.manager.offload(
                lambda: self.manager.restore(name, path)
            )
        else:
            records = body.get("records")
            session = await self.manager.offload(
                lambda: self.manager.create(name, records)
            )
        return {"created": name, "profiles": len(session.resolver.store)}

    def _client_path(self, path: Any) -> str | None:
        """Sandbox a client-supplied snapshot path under ``snapshot_dir``.

        The HTTP surface (and the in-process client, which shares this
        dispatch) treats ``"path"`` as *relative to the configured
        ``serve(snapshot_dir=...)``*; a path that resolves outside that
        directory - absolute, ``..``-climbing or via symlink - is
        rejected, so a socket client can never make the process read or
        write snapshot data at arbitrary filesystem locations.  Trusted
        in-process callers that need free-form paths use
        :class:`~repro.service.session.SessionManager` directly.
        """
        if path is None:
            return None
        if not isinstance(path, str) or not path:
            raise ConfigError("'path' must be a non-empty string")
        root = self.manager.config.snapshot_dir
        if root is None:
            raise ConfigError(
                "client-supplied snapshot paths need a configured "
                "serve(snapshot_dir=...) to resolve against - omit "
                "'path' or configure a snapshot_dir"
            )
        root_real = os.path.realpath(root)
        resolved = os.path.realpath(os.path.join(root_real, path))
        if resolved != root_real and not resolved.startswith(
            root_real + os.sep
        ):
            raise ConfigError(
                f"snapshot path {path!r} escapes the service snapshot "
                "directory"
            )
        return resolved

    async def _operate(
        self, name: str, action: str, body: dict[str, Any]
    ) -> dict[str, Any]:
        session = self.manager.get(name)
        if action == "ingest":
            ranked = await session.ingest(
                _records(body), sources=body.get("sources")
            )
            return {"comparisons": _triples(ranked)}
        if action == "probe":
            decide = body.get("decide", False)
            if not isinstance(decide, bool):
                raise ConfigError(f"'decide' must be a bool, got {decide!r}")
            scored = await session.probe(
                _records(body),
                sources=body.get("sources"),
                workers=body.get("workers"),
                decide=decide,
            )
            if decide:
                return {"results": [_decided(ranked) for ranked in scored]}
            return {"results": [_triples(ranked) for ranked in scored]}
        if action == "stream":
            limit = body.get("limit", 100)
            if not isinstance(limit, int) or limit < 0:
                raise ConfigError(f"'limit' must be an int >= 0, got {limit!r}")
            batch = await session.stream(limit)
            return {"comparisons": _triples(batch)}
        if action == "snapshot":
            return await session.snapshot(self._client_path(body.get("path")))
        raise KeyError(f"no session action {action!r}")


class _MethodNotAllowed(Exception):
    pass


class _BadRequest(Exception):
    """Malformed request framing (answered with a 400, then close)."""


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise _MethodNotAllowed(f"use {expected}, not {method}")


def _records(body: dict[str, Any]) -> list[Any]:
    records = body.get("records")
    if not isinstance(records, list):
        raise ConfigError("the request body needs a 'records' list")
    return records


class ServiceServer:
    """A keep-alive HTTP/1.1 server wrapping a :class:`ServiceApp`.

    ``start()`` binds (``port=0`` picks a free port - read it back from
    :attr:`port`); ``stop()`` closes the listener and in-flight
    connections.  The protocol subset: one JSON request per
    ``Content-Length``-framed message, responses framed the same way,
    connections stay open until the client closes or sends
    ``Connection: close``.
    """

    def __init__(
        self, manager: SessionManager, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = ServiceApp(manager)
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The actually bound port (after ``start()``)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sockets = self._server.sockets or []
        return int(sockets[0].getsockname()[1])

    async def start(self) -> "ServiceServer":
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._requested_port
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- the wire -------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    # Malformed framing: answer 400 and drop the
                    # connection (request boundaries are lost).
                    await self._write_response(
                        writer, 400, {"error": str(exc)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                method, path, headers, payload = request
                status, response = await self._respond(method, path, payload)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._write_response(
                    writer, status, response, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown cancelled the handler mid-await
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _respond(
        self, method: str, path: str, payload: bytes | None
    ) -> tuple[int, dict[str, Any]]:
        if payload is None:
            return 413, {"error": "request body too large"}
        if payload:
            try:
                body = json.loads(payload)
            except ValueError:
                return 400, {"error": "request body is not valid JSON"}
            if not isinstance(body, dict):
                return 400, {"error": "request body must be a JSON object"}
        else:
            body = None
        try:
            return await self.app.handle(method, path, body)
        except Exception as exc:  # pragma: no cover - the 500 safety net
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes | None] | None:
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        except ValueError:
            # The StreamReader limit tripped: request line too long.
            raise _BadRequest("request line too long") from None
        if not line.strip():
            return None
        try:
            method, target, _version = line.decode("latin1").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                raw = await reader.readline()
            except ValueError:
                raise _BadRequest("header line too long") from None
            if raw in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(raw)
            if (
                len(headers) >= MAX_HEADER_COUNT
                or header_bytes > MAX_HEADER_BYTES
            ):
                raise _BadRequest("too many request headers")
            key, _, value = raw.decode("latin1").partition(":")
            headers[key.strip().lower()] = value.strip()
        # Strip any query string: routes are path-only, bodies are JSON.
        path = target.split("?", 1)[0]
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _BadRequest(
                f"invalid Content-Length "
                f"{headers.get('content-length')!r}"
            ) from None
        if length < 0:
            raise _BadRequest(f"invalid Content-Length {length!r}")
        if length > MAX_BODY_BYTES:
            # Cannot skip the oversized body without reading it; answer
            # 413 and drop the connection (framing is lost anyway).
            headers["connection"] = "close"
            return method.upper(), path, headers, None
        payload = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, payload

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin1")
        writer.write(head + body)
        await writer.drain()

"""Clients for the resolution service: in-process and over TCP.

Both speak the JSON API of :mod:`repro.service.http` through one shared
``request(method, path, body)`` seam, so tests, benchmarks and
applications get the same surface whether they hold the
:class:`~repro.service.session.SessionManager` in-process or talk to a
served port.  Non-2xx responses are raised back as the *same* typed
exceptions the service layer threw - the HTTP status mapping is a
bijection, applied in reverse here:

* 429 → :class:`~repro.errors.BudgetExceeded` (with its ``reason``)
* 409 → :class:`~repro.errors.SessionClosed`
* 404 → ``KeyError``
* anything else non-2xx → :class:`~repro.errors.ConfigError`
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import BudgetExceeded, ConfigError, SessionClosed
from repro.service.http import ServiceApp
from repro.service.session import SessionManager


def _raise_for_status(
    status: int, payload: dict[str, Any], method: str, path: str
) -> dict[str, Any]:
    if 200 <= status < 300:
        return payload
    message = payload.get("error", f"{method} {path} failed ({status})")
    if status == 429:
        raise BudgetExceeded(message, reason=payload.get("reason", "budget"))
    if status == 409:
        raise SessionClosed(message)
    if status == 404:
        raise KeyError(message)
    raise ConfigError(f"{message} ({method} {path} -> {status})")


class _BaseClient:
    """The convenience surface shared by both transports."""

    async def request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        raise NotImplementedError

    async def _call(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        status, payload = await self.request(method, path, body)
        return _raise_for_status(status, payload, method, path)

    # -- service --------------------------------------------------------------

    async def health(self) -> dict[str, Any]:
        return await self._call("GET", "/health")

    async def metrics(self) -> dict[str, Any]:
        return await self._call("GET", "/metrics")

    async def sessions(self) -> list[str]:
        return (await self._call("GET", "/sessions"))["sessions"]

    # -- session lifecycle ----------------------------------------------------

    async def create_session(
        self, name: str, records: list[Any] | None = None
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"name": name}
        if records is not None:
            body["records"] = records
        return await self._call("POST", "/sessions", body)

    async def restore_session(
        self, name: str, path: str | None = None
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"name": name, "restore": True}
        if path is not None:
            body["path"] = path
        return await self._call("POST", "/sessions", body)

    async def session_metrics(self, name: str) -> dict[str, Any]:
        return await self._call("GET", f"/sessions/{name}")

    async def delete_session(self, name: str) -> dict[str, Any]:
        return await self._call("DELETE", f"/sessions/{name}")

    # -- resolution -----------------------------------------------------------

    async def ingest(
        self,
        name: str,
        records: list[Any],
        sources: list[int] | None = None,
    ) -> list[list[Any]]:
        body: dict[str, Any] = {"records": records}
        if sources is not None:
            body["sources"] = sources
        response = await self._call("POST", f"/sessions/{name}/ingest", body)
        return response["comparisons"]

    async def probe(
        self,
        name: str,
        records: list[Any],
        sources: list[int] | None = None,
        workers: int | None = None,
        decide: bool = False,
    ) -> list[list[list[Any]]]:
        body: dict[str, Any] = {"records": records}
        if sources is not None:
            body["sources"] = sources
        if workers is not None:
            body["workers"] = workers
        if decide:
            body["decide"] = True
        response = await self._call("POST", f"/sessions/{name}/probe", body)
        return response["results"]

    async def stream(self, name: str, limit: int = 100) -> list[list[Any]]:
        response = await self._call(
            "POST", f"/sessions/{name}/stream", {"limit": limit}
        )
        return response["comparisons"]

    async def snapshot(
        self, name: str, path: str | None = None
    ) -> dict[str, Any]:
        body = {} if path is None else {"path": path}
        return await self._call("POST", f"/sessions/{name}/snapshot", body)


class InProcessClient(_BaseClient):
    """The API without a socket: dispatch straight into the app.

    Everything above the transport - routing, error mapping, JSON
    shapes - is byte-identical to the served surface, which makes this
    the right harness for tests and for embedding the service in an
    existing asyncio application.
    """

    def __init__(self, manager: SessionManager) -> None:
        self.app = ServiceApp(manager)

    async def request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        return await self.app.handle(method, path, body)


class HTTPClient(_BaseClient):
    """A minimal keep-alive HTTP/1.1 client for the served API.

    One TCP connection per client instance, opened lazily and reused
    across requests (the server keeps connections alive); ``close()``
    or ``async with`` releases it.  Not thread-safe - use one client
    per concurrent task, as the benchmark does.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._io_lock = asyncio.Lock()

    async def request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        async with self._io_lock:
            if self._writer is None:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
            assert self._reader is not None and self._writer is not None
            payload = (
                b""
                if body is None
                else json.dumps(body, separators=(",", ":")).encode()
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "\r\n"
            ).encode("latin1")
            self._writer.write(head + payload)
            await self._writer.drain()
            return await self._read_response(self._reader)

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        close = False
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin1").partition(":")
            key = key.strip().lower()
            if key == "content-length":
                length = int(value.strip())
            elif key == "connection" and value.strip().lower() == "close":
                close = True
        payload = await reader.readexactly(length) if length else b""
        if close:
            await self.close()
        return status, json.loads(payload) if payload else {}

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform quirk
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "HTTPClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

"""Resolution-as-a-service: sessions, snapshots and the HTTP front-end.

The serving layer over :class:`~repro.incremental.resolver.
IncrementalResolver` sessions (PR 9):

* :mod:`repro.service.session` - :class:`SessionManager` /
  :class:`ServiceSession`: named live sessions, admission control,
  per-session metrics;
* :mod:`repro.service.snapshot` - session snapshot/restore with the
  bit-identical stream-digest contract;
* :mod:`repro.service.http` - the stdlib asyncio HTTP/1.1 front-end
  (``python -m repro.service`` serves it);
* :mod:`repro.service.client` - in-process and TCP clients over the
  same JSON surface.
"""

from repro.service.client import HTTPClient, InProcessClient
from repro.service.http import ServiceApp, ServiceServer
from repro.service.session import ServiceSession, SessionManager, SessionMetrics
from repro.service.snapshot import (
    SNAPSHOT_FORMAT,
    load_session,
    read_manifest,
    save_session,
    stream_digest,
)

__all__ = [
    "HTTPClient",
    "InProcessClient",
    "SNAPSHOT_FORMAT",
    "ServiceApp",
    "ServiceServer",
    "ServiceSession",
    "SessionManager",
    "SessionMetrics",
    "load_session",
    "read_manifest",
    "save_session",
    "stream_digest",
]

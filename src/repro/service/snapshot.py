"""Session snapshot/restore: cheap restarts for served sessions.

A snapshot is a plain directory:

* ``manifest.json`` - format tag, the pipeline spec (``to_dict`` form),
  ER type, element counts, the index generation and the creation time;
* ``profiles.jsonl`` - one ``[source, [[name, value], ...]]`` record per
  line; the line number *is* the dense profile id;
* ``tokens.json`` - the distinct tokens, sorted;
* ``postings_indptr.npy`` / ``postings_ids.npy`` - the postings in CSR
  form (int64): token ``t``'s posting is
  ``ids[indptr[t]:indptr[t + 1]]``, profile ids in ingestion order.

The arrays are standard ``.npy`` (format version 1) files.  With numpy
installed they are written and read through the persistent
:class:`~repro.engine.storage.ArrayStore` memmap machinery; without it a
small stdlib writer/reader produces and parses byte-identical files - a
snapshot taken on a numpy host restores on a python-only host and vice
versa.

Restoring never re-tokenizes: the postings come straight from the
arrays and every derived statistic is recomputed in one pass
(:meth:`~repro.incremental.index.IncrementalTokenIndex.restore`), so a
restored session streams bit-identically to the saved one - the digest
contract :func:`stream_digest` makes checkable.

Emission-side state (budgets consumed, half-drained streams) is *not*
part of a snapshot: a restored session starts fresh over the saved
corpus, like ``reset()`` on the original.
"""

from __future__ import annotations

import ast
import contextlib
import json
import os
import struct
import sys
import time
from array import array
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.comparisons import Comparison
from repro.core.profiles import EntityProfile, ERType

try:  # numpy is optional (the repro[speed] extra)
    import numpy as np
except ImportError:  # pragma: no cover - exercised on python-only hosts
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.incremental.resolver import IncrementalResolver

#: Snapshot format tag; bumped on any layout change.
SNAPSHOT_FORMAT = "repro-session/1"

MANIFEST = "manifest.json"
PROFILES = "profiles.jsonl"
TOKENS = "tokens.json"
INDPTR = "postings_indptr"
IDS = "postings_ids"

_NPY_MAGIC = b"\x93NUMPY"


def stream_digest(comparisons: Iterable[Comparison]) -> str:
    """Order- and weight-sensitive digest of an emission stream.

    The snapshot acceptance contract: a restored session's ``stream()``
    must produce the same digest as a fresh ``stream()`` of the saved
    session - same pairs, same order, bit-identical weights (``repr``
    of a float is exact round-trip text).
    """
    import hashlib

    digest = hashlib.blake2b(digest_size=16)
    for comparison in comparisons:
        digest.update(
            f"{comparison.i},{comparison.j},{comparison.weight!r};".encode()
        )
    return digest.hexdigest()


# -- int64 .npy files, with and without numpy ---------------------------------


def _npy_header(count: int) -> bytes:
    """The byte-exact .npy v1 preamble numpy writes for a 1-D int64 array."""
    header = (
        "{'descr': '<i8', 'fortran_order': False, "
        f"'shape': ({count},), }}"
    )
    # Pad with spaces so magic+version+length+header is 64-aligned,
    # newline-terminated - the alignment rule of the .npy format spec.
    base = len(_NPY_MAGIC) + 2 + 2
    padded = -(base + len(header) + 1) % 64
    header = header + " " * padded + "\n"
    return (
        _NPY_MAGIC + b"\x01\x00" + struct.pack("<H", len(header))
        + header.encode("latin1")
    )


def _write_npy_int64(path: str, values: Sequence[int]) -> None:
    """Write a 1-D int64 ``.npy`` (format v1) with the stdlib only."""
    data = array("q", (int(v) for v in values))
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI
        data.byteswap()
    with open(path, "wb") as handle:
        handle.write(_npy_header(len(data)))
        handle.write(data.tobytes())


def _read_npy_int64(path: str) -> Sequence[int]:
    """Read a 1-D little-endian int64 ``.npy`` with the stdlib only."""
    with open(path, "rb") as handle:
        magic = handle.read(len(_NPY_MAGIC))
        if magic != _NPY_MAGIC:
            raise ValueError(f"{path} is not a .npy file")
        major = handle.read(2)[0]
        length = struct.unpack(
            "<H" if major == 1 else "<I", handle.read(2 if major == 1 else 4)
        )[0]
        header = ast.literal_eval(handle.read(length).decode("latin1"))
        if header.get("descr") != "<i8" or header.get("fortran_order"):
            raise ValueError(
                f"{path}: expected a C-order '<i8' array, got {header!r}"
            )
        (count,) = header["shape"]
        data = array("q")
        data.frombytes(handle.read(8 * count))
        if len(data) != count:
            raise ValueError(f"{path}: truncated array ({len(data)}/{count})")
        if sys.byteorder == "big":  # pragma: no cover - little-endian CI
            data.byteswap()
        return data


def _write_arrays(path: str, indptr: Sequence[int], flat: Sequence[int]) -> None:
    if np is None:
        _write_npy_int64(os.path.join(path, f"{INDPTR}.npy"), indptr)
        _write_npy_int64(os.path.join(path, f"{IDS}.npy"), flat)
        return
    # The ArrayStore persistent mode: the same memmap machinery the
    # storage="memmap" substrate uses, rooted at the snapshot directory
    # and left on disk by close().
    from repro.engine.storage import ArrayStore

    store = ArrayStore.persistent(path)
    try:
        # indptr always has at least one entry (the leading 0).
        out = store.empty(len(indptr), np.int64, name=INDPTR)
        out[:] = np.asarray(indptr, dtype=np.int64)
        del out  # flush the memmap before detaching the store
        if flat:
            ids = store.empty(len(flat), np.int64, name=IDS)
            ids[:] = np.asarray(flat, dtype=np.int64)
            del ids
        else:
            # np.memmap rejects zero-length maps; write the empty array
            # through the stdlib path (byte-identical header).
            _write_npy_int64(os.path.join(path, f"{IDS}.npy"), [])
    finally:
        store.close()


def _read_array(path: str) -> Sequence[int]:
    if np is not None:
        loaded = np.load(path, mmap_mode="r")
        if loaded.dtype != np.int64 or loaded.ndim != 1:
            raise ValueError(
                f"{path}: expected a 1-D int64 array, got "
                f"{loaded.dtype}/{loaded.ndim}-D"
            )
        return loaded
    return _read_npy_int64(path)


# -- save / load --------------------------------------------------------------


def save_session(resolver: "IncrementalResolver", path: str) -> str:
    """Write ``resolver``'s state as a snapshot directory at ``path``.

    Called through :meth:`IncrementalResolver.save` (which holds the
    session lock, so the state written is a consistent cut).  Existing
    snapshot files at ``path`` are overwritten; any previous manifest is
    removed *first* and the new one is written last (atomically), so a
    directory with a readable manifest is always a complete snapshot -
    a save torn by a crash leaves no manifest, never a stale one over
    mixed old/new data files.
    """
    os.makedirs(path, exist_ok=True)
    with contextlib.suppress(FileNotFoundError):
        # Invalidate the old snapshot before touching its data files: a
        # crash mid-save must not leave the previous (valid-looking)
        # manifest describing a hybrid of old and new files.
        os.remove(os.path.join(path, MANIFEST))
    store = resolver.store
    with open(os.path.join(path, PROFILES), "w") as handle:
        for profile in store:
            json.dump(
                [profile.source, [list(pair) for pair in profile.pairs]],
                handle,
                separators=(",", ":"),
            )
            handle.write("\n")
    tokens, indptr, flat = resolver.index.postings_csr()
    with open(os.path.join(path, TOKENS), "w") as handle:
        json.dump(tokens, handle)
    _write_arrays(path, indptr, flat)
    manifest = {
        "format": SNAPSHOT_FORMAT,
        "config": resolver.config.to_dict(),
        "er_type": store.er_type.name,
        "dataset_name": resolver.dataset_name,
        "profiles": len(store),
        "tokens": len(tokens),
        "postings": len(flat),
        "generation": resolver.index.generation,
        "created_unix": time.time(),
    }
    manifest_path = os.path.join(path, MANIFEST)
    staging = manifest_path + ".tmp"
    with open(staging, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(staging, manifest_path)
    return path


def read_manifest(path: str) -> dict:
    """Load and format-check a snapshot directory's manifest."""
    try:
        with open(os.path.join(path, MANIFEST)) as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise ValueError(
            f"{path!r} is not a session snapshot (no {MANIFEST})"
        ) from None
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"unsupported snapshot format {manifest.get('format')!r} at "
            f"{path!r} (expected {SNAPSHOT_FORMAT!r})"
        )
    return manifest


def load_session(path: str) -> "IncrementalResolver":
    """Rebuild an :class:`IncrementalResolver` from a snapshot directory.

    The inverse of :func:`save_session`: profiles are re-read into a
    fresh :class:`~repro.incremental.store.MutableProfileStore`, the
    token index is restored from the CSR arrays without re-tokenizing,
    and the resolver is constructed over both - ready to stream
    (bit-identically to the saved session) and to ingest further
    profiles.
    """
    from repro.incremental.index import IncrementalTokenIndex
    from repro.incremental.resolver import IncrementalResolver
    from repro.incremental.store import MutableProfileStore
    from repro.pipeline.config import PipelineConfig

    manifest = read_manifest(path)
    config = PipelineConfig.from_dict(manifest["config"])
    profiles = []
    with open(os.path.join(path, PROFILES)) as handle:
        for line_number, line in enumerate(handle):
            source, pairs = json.loads(line)
            profiles.append(EntityProfile(line_number, pairs, source))
    if len(profiles) != manifest["profiles"]:
        raise ValueError(
            f"snapshot at {path!r} holds {len(profiles)} profiles, "
            f"manifest says {manifest['profiles']}"
        )
    store = MutableProfileStore(profiles, ERType[manifest["er_type"]])
    with open(os.path.join(path, TOKENS)) as handle:
        tokens = json.load(handle)
    indptr = _read_array(os.path.join(path, f"{INDPTR}.npy"))
    flat = _read_array(os.path.join(path, f"{IDS}.npy"))
    index = IncrementalTokenIndex.restore(
        store,
        tokens,
        indptr[: len(tokens) + 1],
        flat,
        generation=int(manifest["generation"]),
    )
    return IncrementalResolver(
        config,
        store,
        dataset_name=manifest.get("dataset_name", ""),
        index=index,
    )

"""Named live sessions, admission control and per-session metrics.

The :class:`SessionManager` is the service core the HTTP front-end and
the in-process client both talk to: it owns named
:class:`~repro.incremental.resolver.IncrementalResolver` sessions and
exposes their operations as coroutines.  Resolver calls are blocking
CPU work, so every operation is off-loaded to a shared thread pool;
*within* a session the resolver's own lock serializes ingests and
sequential probes (probes mutate and roll back the shared index), while
:meth:`ServiceSession.probe` fans batches across the ``resolve_many``
worker-pool seam.

Admission control reuses the pipeline's
:class:`~repro.pipeline.config.BudgetConfig` semantics (``None`` means
unlimited, ``0`` admits nothing).  An over-budget request is *rejected*
with :class:`~repro.errors.BudgetExceeded` - never queued - carrying a
machine-readable ``reason`` token:

========================  ====================================================
reason                    trigger
========================  ====================================================
``queue-full``            session already has ``max_pending`` requests in
                          flight
``session-comparisons``   the session has served its lifetime comparison
                          budget
``session-seconds``       the session has outlived its lifetime seconds
                          budget
``request-seconds``       the request waited in the queue longer than its
                          own seconds budget
========================  ====================================================

``request_budget.comparisons`` is not a rejection but a cap: each
probe's (or ingest's) result list is truncated to the best-ranked
``comparisons`` entries.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    Mapping,
    Sequence,
    TypeAlias,
    TypeVar,
)

from repro.core.comparisons import Comparison
from repro.core.profiles import EntityProfile
from repro.errors import BudgetExceeded, ConfigError, SessionClosed
from repro.incremental.resolver import IncrementalResolver
from repro.pipeline.builder import ERPipeline
from repro.pipeline.config import ServiceConfig
from repro.service.snapshot import read_manifest

_T = TypeVar("_T")

#: Latency samples kept per session (a ring of the most recent probes).
_LATENCY_WINDOW = 1024

#: Anything the resolver's ingestion coercion accepts as one record.
Record: TypeAlias = (
    "EntityProfile | Mapping[str, object] | Iterable[tuple[str, object]]"
)


def _percentile(samples: Sequence[float], fraction: float) -> float | None:
    """Nearest-rank percentile of ``samples`` (``None`` when empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class SessionMetrics:
    """Mutable per-session counters behind :meth:`ServiceSession.metrics`."""

    probes: int = 0
    ingests: int = 0
    rejected: int = 0
    comparisons_served: int = 0
    snapshots: int = 0
    last_snapshot_unix: float | None = None
    probe_latencies: list[float] = field(default_factory=list)

    def record_probe(self, seconds: float, served: int) -> None:
        self.probes += 1
        self.comparisons_served += served
        self.probe_latencies.append(seconds)
        if len(self.probe_latencies) > _LATENCY_WINDOW:
            del self.probe_latencies[: -_LATENCY_WINDOW]


class ServiceSession:
    """One named live session: a resolver plus service bookkeeping.

    Not constructed directly - :meth:`SessionManager.create` and
    :meth:`SessionManager.restore` build these.  All coroutine methods
    run their resolver work on the manager's thread pool; admission
    happens on the event loop before the work is queued.
    """

    def __init__(
        self,
        name: str,
        resolver: IncrementalResolver,
        config: ServiceConfig,
        executor: ThreadPoolExecutor,
    ) -> None:
        self.name = name
        self.resolver = resolver
        self.config = config
        self._executor = executor
        self._pending = 0
        self._created = time.monotonic()
        self._metrics = SessionMetrics()
        #: Guards the metrics/pending counters: admission runs on the
        #: event loop, latency recording on pool threads.
        self._stats_lock = threading.Lock()

    # -- admission control ----------------------------------------------------

    def _admit(self) -> None:
        """Admit one request or raise the typed rejection."""
        if self.resolver.closed:
            raise SessionClosed(
                f"session {self.name!r} is closed; create or restore a "
                "fresh one"
            )
        budget = self.config.session_budget
        with self._stats_lock:
            if self._pending >= self.config.max_pending:
                self._metrics.rejected += 1
                raise BudgetExceeded(
                    f"session {self.name!r} already has "
                    f"{self._pending} requests in flight "
                    f"(max_pending={self.config.max_pending})",
                    reason="queue-full",
                )
            if (
                budget.comparisons is not None
                and self._metrics.comparisons_served >= budget.comparisons
            ):
                self._metrics.rejected += 1
                raise BudgetExceeded(
                    f"session {self.name!r} has served "
                    f"{self._metrics.comparisons_served} comparisons "
                    f"(session budget {budget.comparisons})",
                    reason="session-comparisons",
                )
            if (
                budget.seconds is not None
                and time.monotonic() - self._created >= budget.seconds
            ):
                self._metrics.rejected += 1
                raise BudgetExceeded(
                    f"session {self.name!r} is older than its lifetime "
                    f"budget of {budget.seconds}s",
                    reason="session-seconds",
                )
            self._pending += 1

    def _truncate(self, ranked: list[_T]) -> list[_T]:
        cap = self.config.request_budget.comparisons
        return ranked if cap is None else ranked[:cap]

    async def _run(self, work: Callable[[], _T]) -> _T:
        """Admit, then run ``work`` on the pool; always settle counters."""
        self._admit()
        queued = time.monotonic()
        deadline = self.config.request_budget.seconds
        loop = asyncio.get_running_loop()

        def guarded() -> _T:
            # The queue-wait check runs on the pool thread right before
            # the work starts: a request that could not *start* within
            # its seconds budget is rejected, not served late.
            waited = time.monotonic() - queued
            if deadline is not None and waited >= deadline:
                with self._stats_lock:
                    self._metrics.rejected += 1
                raise BudgetExceeded(
                    f"request waited {waited:.3f}s in the queue of session "
                    f"{self.name!r} (request budget {deadline}s)",
                    reason="request-seconds",
                )
            return work()

        try:
            return await loop.run_in_executor(self._executor, guarded)
        finally:
            with self._stats_lock:
                self._pending -= 1

    # -- operations -----------------------------------------------------------

    async def ingest(
        self,
        records: Iterable[Record],
        sources: Iterable[int] | None = None,
    ) -> list[Comparison]:
        """Ingest a batch; returns its new comparisons, ranked, capped."""
        items = list(records)

        def work() -> list[Comparison]:
            ranked = self._truncate(self.resolver.add_profiles(items, sources))
            with self._stats_lock:
                self._metrics.ingests += 1
                self._metrics.comparisons_served += len(ranked)
            return ranked

        return await self._run(work)

    async def probe(
        self,
        records: Iterable[Record],
        sources: Iterable[int] | None = None,
        workers: int | None = None,
        decide: bool = False,
    ) -> "list[list[Any]]":
        """Read-only probes for a batch (the ``resolve_many`` fan-out).

        ``decide=True`` runs the session's matching cascade over every
        scored pair and returns
        :class:`~repro.pipeline.resolver.DecisionRecord` lists.  Served
        sessions run the cascade in strict budget mode: a spent
        expensive-tier call budget *rejects* the request
        (:class:`~repro.errors.BudgetExceeded`, reason
        ``"expensive-calls"``) like any other admission failure.
        """
        items = list(records)

        def work() -> "list[list[Any]]":
            started = time.monotonic()
            try:
                scored = self.resolver.resolve_many(
                    items, sources=sources, workers=workers, decide=decide
                )
            except BudgetExceeded:
                # The cascade's expensive-tier admission: counted with
                # the service rejections, surfaced with its own reason.
                with self._stats_lock:
                    self._metrics.rejected += 1
                raise
            capped = [self._truncate(ranked) for ranked in scored]
            with self._stats_lock:
                self._metrics.record_probe(
                    time.monotonic() - started,
                    sum(len(ranked) for ranked in capped),
                )
            return capped

        return await self._run(work)

    async def stream(self, limit: int) -> list[Comparison]:
        """The next ``limit`` comparisons of the global ranked stream."""

        def work() -> list[Comparison]:
            batch = self.resolver.next_batch(limit)
            with self._stats_lock:
                self._metrics.comparisons_served += len(batch)
            return batch

        return await self._run(work)

    async def snapshot(self, path: str | None = None) -> dict[str, Any]:
        """Persist the session; returns the written manifest."""
        if path is None:
            if self.config.snapshot_dir is None:
                raise ConfigError(
                    "no snapshot path given and the service has no "
                    "snapshot_dir - pass a path or configure "
                    "serve(snapshot_dir=...)"
                )
            path = os.path.join(self.config.snapshot_dir, self.name)

        def work() -> dict[str, Any]:
            manifest = read_manifest(self.resolver.save(path))
            with self._stats_lock:
                self._metrics.snapshots += 1
                self._metrics.last_snapshot_unix = manifest["created_unix"]
            return {"path": path, **manifest}

        return await self._run(work)

    # -- introspection --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.resolver.closed

    def metrics(self) -> dict[str, Any]:
        """A JSON-able point-in-time view of the session's counters."""
        scorer = getattr(self.resolver, "_scorer", None)
        with self._stats_lock:
            stats = self._metrics
            latencies = list(stats.probe_latencies)
            snapshot_age = (
                None
                if stats.last_snapshot_unix is None
                else max(0.0, time.time() - stats.last_snapshot_unix)
            )
            return {
                "name": self.name,
                "closed": self.resolver.closed,
                "profiles": len(self.resolver.store),
                "generation": self.resolver.index.generation,
                "age_seconds": time.monotonic() - self._created,
                "queue_depth": self._pending,
                "probes": stats.probes,
                "ingests": stats.ingests,
                "rejected": stats.rejected,
                "comparisons_served": stats.comparisons_served,
                "probe_latency_p50": _percentile(latencies, 0.50),
                "probe_latency_p95": _percentile(latencies, 0.95),
                "scorer_rebuilds": getattr(scorer, "rebuilds", None),
                "scorer_delta_updates": getattr(scorer, "delta_updates", None),
                "cascade": self.resolver.cascade_stats(),
                "snapshots": stats.snapshots,
                "snapshot_age_seconds": snapshot_age,
            }

    def close(self) -> None:
        """Close the underlying resolver (idempotent, probe-safe)."""
        self.resolver.close()


class SessionManager:
    """The registry of named sessions behind one served pipeline spec.

    Every session fits the same pipeline (its ``.serve(...)`` stage
    supplies the :class:`ServiceConfig`; a pipeline without one gets
    ``serve()`` defaults).  Sessions share a thread pool sized for
    lock-serialized resolver work.
    """

    def __init__(
        self,
        pipeline: ERPipeline | None = None,
        *,
        max_threads: int | None = None,
    ) -> None:
        if pipeline is None:
            pipeline = ERPipeline().serve()
        if pipeline.config.service is None:
            # Normalize through the spec round-trip (no caller mutation)
            # and attach the default service stage.
            pipeline = ERPipeline.from_dict(pipeline.to_dict()).serve()
        self.pipeline = pipeline
        service = pipeline.config.service
        assert service is not None
        self.config: ServiceConfig = service
        self._sessions: dict[str, ServiceSession] = {}
        #: Guards the session registry: lifecycle operations may run on
        #: pool threads (the HTTP front-end off-loads them) while reads
        #: happen on the event loop.
        self._registry_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_threads or min(8, (os.cpu_count() or 1) + 2),
            thread_name_prefix="repro-service",
        )
        self._closed = False

    async def offload(self, work: Callable[[], _T]) -> _T:
        """Run blocking ``work`` on the manager's thread pool.

        The seam the HTTP front-end uses for lifecycle operations
        (create's seed ``fit``, restore's disk load, delete's
        lock-acquiring ``close``) so they never stall the event loop.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, work)

    # -- lifecycle ------------------------------------------------------------

    def create(
        self, name: str, records: Iterable[Record] | None = None
    ) -> ServiceSession:
        """Fit a fresh named session (optionally seeded with records)."""
        self._check_open()
        _check_name(name)
        if name in self._sessions:
            raise ConfigError(f"session {name!r} already exists")
        resolver = self.pipeline.fit(list(records or []))
        assert isinstance(resolver, IncrementalResolver)
        session = ServiceSession(name, resolver, self.config, self._executor)
        return self._register(name, session)

    def restore(self, name: str, path: str | None = None) -> ServiceSession:
        """Rebuild a named session from a snapshot directory.

        ``path`` defaults to ``snapshot_dir/name`` - the location
        :meth:`ServiceSession.snapshot` writes without an explicit path.
        The restored session *keeps the snapshot's pipeline spec* (that
        is what makes its stream bit-identical), not the manager's.
        """
        self._check_open()
        _check_name(name)
        if name in self._sessions:
            raise ConfigError(f"session {name!r} already exists")
        if path is None:
            if self.config.snapshot_dir is None:
                raise ConfigError(
                    "no snapshot path given and the service has no "
                    "snapshot_dir - pass a path or configure "
                    "serve(snapshot_dir=...)"
                )
            path = os.path.join(self.config.snapshot_dir, name)
        resolver = IncrementalResolver.load(path)
        session = ServiceSession(name, resolver, self.config, self._executor)
        return self._register(name, session)

    def _register(self, name: str, session: ServiceSession) -> ServiceSession:
        """Atomically claim ``name``; the loser of a race is closed."""
        with self._registry_lock:
            if not self._closed and name not in self._sessions:
                self._sessions[name] = session
                return session
        session.close()
        if self._closed:
            raise SessionClosed("this SessionManager is closed")
        raise ConfigError(f"session {name!r} already exists")

    def get(self, name: str) -> ServiceSession:
        """The named session (:class:`KeyError` when unknown)."""
        self._check_open()
        try:
            return self._sessions[name]
        except KeyError:
            raise KeyError(f"no session named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._sessions)

    def delete(self, name: str) -> None:
        """Close and forget the named session."""
        self._check_open()
        with self._registry_lock:
            try:
                session = self._sessions.pop(name)
            except KeyError:
                raise KeyError(f"no session named {name!r}") from None
        # Close outside the registry lock: it waits for the session's
        # in-flight resolver work and must not block other lifecycle ops.
        session.close()

    def metrics(self) -> dict[str, Any]:
        """Service-wide metrics: per-session views plus totals."""
        sessions = [
            self._sessions[name].metrics() for name in self.names()
        ]
        return {
            "sessions": sessions,
            "session_count": len(sessions),
            "comparisons_served": sum(
                view["comparisons_served"] for view in sessions
            ),
            "rejected": sum(view["rejected"] for view in sessions),
        }

    # -- teardown -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosed("this SessionManager is closed")

    def close(self) -> None:
        """Close every session and the shared pool (idempotent)."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            doomed = list(self._sessions.values())
            self._sessions.clear()
        for session in doomed:
            session.close()
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _check_name(name: str) -> None:
    """Session names travel in URLs and snapshot paths - keep them tame."""
    if (
        not name
        or not all(ch.isalnum() or ch in "-_." for ch in name)
        or name.startswith(".")
    ):
        raise ConfigError(
            f"invalid session name {name!r}: use letters, digits, '-', "
            "'_' and '.' (not leading)"
        )

"""Sharded execution cores for the equality methods (PPS, PBS).

Both subclass their sequential :mod:`repro.engine.equality` counterparts
over the *same merged structures* (the graph comes from
:func:`~repro.parallel.graph.sharded_blocking_graph`), overriding only
the passes worth fanning out:

* :class:`ParallelPPSCore` shards the Algorithm-6 emission by schedule
  rank: each worker lexsorts and K_max-truncates the neighborhoods of a
  contiguous rank range ("weights + top-k over the shard's
  neighborhoods"), and because rank is the primary emission key, the
  merged stream is the shards concatenated in plan order.
* :class:`ParallelPBSCore` shards the block-comparison enumeration by
  contiguous block ranges balanced on cardinality mass; pair order
  inside a block is deterministic, so the shard outputs concatenate
  into exactly the sequential block-major event arrays, and the global
  LeCoBI pass runs unchanged on top.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.comparisons import Comparison
from repro.engine import require_numpy

require_numpy("repro.parallel.equality")

import numpy as np  # noqa: E402  (guarded optional dependency)

from repro.engine.csr import ArrayProfileIndex  # noqa: E402
from repro.engine.equality import ArrayPBSCore, ArrayPPSCore  # noqa: E402
from repro.engine.topk import iter_comparisons  # noqa: E402
from repro.engine.weights import ArrayBlockingGraph  # noqa: E402
from repro.parallel.merge import ShardMerger  # noqa: E402
from repro.parallel.plan import ShardPlan  # noqa: E402
from repro.parallel.pool import WorkerPool  # noqa: E402
from repro.parallel.tasks import block_pairs_task, pps_schedule_task  # noqa: E402


class ParallelPPSCore(ArrayPPSCore):
    """PPS core whose emission schedule fans out over rank shards."""

    __slots__ = ("shards", "pool")

    def __init__(
        self,
        index: ArrayProfileIndex,
        graph: ArrayBlockingGraph,
        k_max: int | None,
        shards: int,
        pool: WorkerPool,
    ) -> None:
        super().__init__(index, graph, k_max)
        self.shards = shards
        self.pool = pool

    def emit_schedule(
        self, schedule: Sequence[int], k: int
    ) -> Iterator[Comparison]:
        """Algorithm 6 across rank shards (see the base for the math).

        The kept-edge filter runs in the parent (one boolean pass); the
        expensive ``(rank, -weight, neighbor)`` lexsort and per-owner
        truncation run per shard.  Shard boundaries snap to whole rank
        groups, so each owner's segment lives in exactly one shard and
        concatenation in plan order is the exact sequential stream.
        """
        graph = self.graph
        n = self.index.n_profiles
        order_pids = np.asarray(schedule, dtype=np.int64)
        rank = np.full(n, n, dtype=np.int64)
        rank[order_pids] = np.arange(order_pids.size, dtype=np.int64)

        owners = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
        keep = rank[graph.neighbors] > rank[owners]
        owner = owners[keep]
        neighbor = graph.neighbors[keep]
        weight = graph.weights[keep]
        if owner.size == 0:
            return iter(())

        owner_rank = rank[owner]
        # Rank-major layout: one stable single-key sort here buys the
        # workers contiguous rank ranges (the heavy three-key lexsort
        # then happens per shard).
        by_rank = np.argsort(owner_rank, kind="stable")
        owner = owner[by_rank]
        neighbor = neighbor[by_rank]
        weight = weight[by_rank]
        sorted_rank = owner_rank[by_rank]
        bounds = ShardPlan.uniform(int(sorted_rank.size), self.shards)

        # Snap each cut to the start of its rank group so no owner
        # segment straddles two shards (empty shards are fine).
        def snap(bound: int) -> int:
            if bound >= sorted_rank.size:
                return int(sorted_rank.size)
            return int(np.searchsorted(sorted_rank, sorted_rank[bound], "left"))

        chunks = []
        for lo, hi in bounds.ranges():
            lo, hi = snap(lo), snap(hi)
            chunks.append(
                (owner[lo:hi], neighbor[lo:hi], weight[lo:hi], sorted_rank[lo:hi], k)
            )
        outputs = self.pool.run_transient(pps_schedule_task, chunks)
        return iter_comparisons(*ShardMerger.concat(outputs))


class ParallelPBSCore(ArrayPBSCore):
    """PBS core whose block-pair enumeration fans out over block shards."""

    __slots__ = ("shards", "pool", "payload")

    def __init__(
        self,
        index: ArrayProfileIndex,
        graph: ArrayBlockingGraph,
        shards: int,
        pool: WorkerPool,
        payload: dict[str, Any] | None = None,
    ) -> None:
        # The base __init__ drives _enumerate_pairs, so the fan-out
        # knobs must exist first.  ``payload`` should be the same dict
        # the graph build shipped, so the pool reuses its workers.
        self.shards = shards
        self.pool = pool
        self.payload = payload
        super().__init__(index, graph)

    def _enumerate_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        payload = self.payload
        if payload is None:
            # Standalone use (no shared graph payload): ship only what
            # block_pairs_task reads.
            from repro.core.profiles import ERType

            index = self.index
            payload = {
                "bp_indptr": index.bp_indptr,
                "bp_indices": index.bp_indices,
                "cardinalities": index.block_cardinalities,
                "sources": index.sources,
                "clean_clean": index.store.er_type is ERType.CLEAN_CLEAN,
            }
            self.payload = payload
        # block_indptr cumsums block cardinalities, i.e. each block's
        # comparison count - the exact pair-generation mass.
        plan = ShardPlan.balanced(self.block_indptr, self.shards)
        outputs = self.pool.run(block_pairs_task, payload, plan.ranges())
        live = [out for out in outputs if out[0].size]
        if not live:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return (
            np.concatenate([out[0] for out in live]),
            np.concatenate([out[1] for out in live]),
        )

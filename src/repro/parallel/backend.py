"""The ``"numpy-parallel"`` backend: the CSR engine, sharded.

:class:`ParallelBackend` extends the ``numpy`` backend's factory seam:
structures are the same CSR arrays, but the expensive builds fan out
over a :class:`~repro.parallel.pool.WorkerPool` according to a
:class:`~repro.parallel.plan.ShardPlan`, and ranked outputs re-merge
through :class:`~repro.parallel.merge.ShardMerger` - bit-identical
streams, more cores.

Configuration travels as a *backend instance*: the registry entry
builds an unconfigured backend (``workers=None`` - one per visible
core), while ``ERPipeline().parallel(workers=..., shards=...)`` and
:func:`repro.resolve` construct configured instances and hand them
straight to the methods (every method's ``backend=`` accepts an
instance as well as a name).

This module must import cleanly without numpy - the backends registry
loads it eagerly - so all array machinery is imported lazily inside the
factory methods, mirroring :mod:`repro.engine`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.engine import NumpyBackend, require_numpy
from repro.registry import backends


class ParallelBackend(NumpyBackend):
    """Sharded multi-process execution of the CSR engine.

    Parameters
    ----------
    workers:
        Worker processes: ``None`` (default) resolves to one per
        visible core; ``0``/``1`` runs every shard inline in-process
        (the same code path, no processes - useful for tests and
        single-core machines).
    shards:
        Shard count per fan-out; ``None`` matches the resolved worker
        count (at least 1).  More shards than workers smooths
        imbalance at the cost of per-shard overhead.
    ship:
        Payload transport: ``"pickle"`` (default) or ``"memmap"``
        (arrays shared through the page cache; see
        :mod:`repro.parallel.pool`).
    storage, storage_dir:
        As :class:`~repro.engine.NumpyBackend`: ``storage="memmap"``
        serves the merged CSR structures from disk-backed scratch
        arrays instead of RAM.
    """

    name = "numpy-parallel"

    def __init__(
        self,
        workers: int | None = None,
        shards: int | None = None,
        ship: str = "pickle",
        storage: str = "ram",
        storage_dir: str | None = None,
    ) -> None:
        super().__init__(storage=storage, storage_dir=storage_dir)
        if workers is None:
            from repro.parallel.pool import default_worker_count

            workers = default_worker_count()
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if ship not in ("pickle", "memmap"):
            raise ValueError(
                f"ship must be 'pickle' or 'memmap', got {ship!r}"
            )
        self.workers = workers
        self.shards = shards if shards is not None else max(workers, 1)
        self.ship = ship
        self._pool: Any = None
        self._payloads: dict[tuple[int, int], tuple[Any, dict[str, Any]]] = {}

    def require(self) -> "ParallelBackend":
        require_numpy("backend='numpy-parallel'")
        return self

    # -- execution machinery -------------------------------------------------

    def pool(self) -> Any:
        """The backend's (lazily created) worker pool."""
        if self._pool is None:
            from repro.parallel.pool import WorkerPool

            self._pool = WorkerPool(self.workers, ship=self.ship)
        return self._pool

    def close(self) -> None:
        """Tear down the pool and scratch store (both also die with
        the backend)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._payloads.clear()
        super().close()

    def _payload_for(self, index: Any, scheme: Any) -> dict[str, Any]:
        """One shared worker payload per (index, scheme) pair.

        Sharing the dict *object* matters: the pool re-ships only when
        the payload identity changes, so a method whose build runs
        several fan-outs over the same index (PBS: graph rows, then
        block pairs) forks and ships exactly once.

        The cache entry keeps a strong reference to the index and
        verifies it on every hit: ``id()`` alone is not a safe key,
        because a garbage-collected index's address can be recycled by
        a different dataset's index on a backend reused across fits.
        """
        from repro.parallel.graph import graph_payload

        key = (id(index), id(type(scheme)))
        entry = self._payloads.get(key)
        if entry is not None and entry[0] is index:
            return entry[1]
        payload = graph_payload(index, scheme)
        self._payloads[key] = (index, payload)
        return payload

    # -- core factories (the seam the methods consume) -----------------------

    def blocking_substrate(self, store: Any, spec: Any) -> Any:
        """The array substrate with its tokenization sweep sharded over
        the pool (bit-identical to the sequential build)."""
        self.require()
        from repro.parallel.substrate import ShardedSubstrate

        return ShardedSubstrate(
            store,
            spec,
            shards=self.shards,
            pool=self.pool(),
            storage=self.array_store(),
        )

    def blocking_graph(self, index: Any, weighting: str) -> Any:
        self.require()
        from repro.engine.weights import make_array_scheme
        from repro.parallel.graph import sharded_blocking_graph

        scheme = make_array_scheme(weighting, index)
        return sharded_blocking_graph(
            index,
            scheme,
            shards=self.shards,
            pool=self.pool(),
            payload=self._payload_for(index, scheme),
            storage=self.array_store(),
        )

    def pps_core(self, scheduled: Any, weighting: str, k_max: int | None) -> Any:
        self.require()
        from repro.parallel.equality import ParallelPPSCore

        index = self.profile_index(scheduled)
        graph = self.blocking_graph(index, weighting)
        return ParallelPPSCore(
            index, graph, k_max, shards=self.shards, pool=self.pool()
        )

    def pbs_core(self, index: Any, graph: Any) -> Any:
        self.require()
        from repro.parallel.equality import ParallelPBSCore

        return ParallelPBSCore(
            index,
            graph,
            shards=self.shards,
            pool=self.pool(),
            payload=self._payload_for(index, graph.scheme),
        )

    def psn_core(self, neighbor_list: Any, store: Any, weighting: Any) -> Any:
        self.require()
        from repro.parallel.similarity import ParallelPSNCore

        return ParallelPSNCore(
            neighbor_list, store, weighting, shards=self.shards, pool=self.pool()
        )

    def ranked_edges(self, graph: Any) -> Any:
        """Graph edges ranked ``(-weight, i, j)``: per-shard stable sorts
        k-way merged - the ONLINE method's whole emission."""
        self.require()
        from repro.parallel.merge import ShardMerger
        from repro.parallel.plan import ShardPlan
        from repro.parallel.tasks import ranked_sort_task

        i, j, weights = graph.edges()
        if i.size == 0:
            return i, j, weights
        plan = ShardPlan.uniform(int(i.size), self.shards)
        chunks = [
            (i[lo:hi], j[lo:hi], weights[lo:hi]) for lo, hi in plan.ranges()
        ]
        ranked = self.pool().run_transient(ranked_sort_task, chunks)
        return ShardMerger.merge(ranked)

    def pruned_edges(self, graph: Any, algorithm: str, k: int | None) -> Any:
        """Meta-blocking pruning with node statistics computed per owner
        shard and survivors re-ranked through the exact k-way merge."""
        self.require()
        from repro.parallel.pruning import sharded_pruned_edges

        return sharded_pruned_edges(
            graph, algorithm, k, shards=self.shards, pool=self.pool()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelBackend(workers={self.workers}, "
            f"shards={self.shards}, ship={self.ship!r})"
        )


backends.register(
    "numpy-parallel",
    ParallelBackend,
    aliases=("parallel", "np-parallel", "sharded"),
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro import contracts

    # mypy --strict proves the sharded backend satisfies the typed seam
    # (inherited structure factories included).
    _SEAM_CONFORMANCE: tuple[contracts.Backend, ...] = (ParallelBackend(),)

"""Sharded blocking substrate: the tokenization sweep, fanned out.

The array-native substrate's one remaining Python loop is the
tokenization sweep itself.  :class:`ShardedSubstrate` dispatches
contiguous profile ranges across the
:class:`~repro.parallel.pool.WorkerPool` - each worker interns tokens
locally over its range - and merges the local vocabularies into the
global intern map with an exact postings reconstruction:

* shard ranges are contiguous and ascending, so concatenated per-shard
  pair arrays reproduce the sequential profile-major pair order exactly;
* merging shard vocabularies in shard order reproduces the sequential
  first-appearance intern order (a token's first appearance lives in
  the earliest shard that contains it).

Everything downstream (postings grouping, vectorized purge/filter, the
index and Neighbor List views) is inherited unchanged from
:class:`~repro.engine.substrate.ArraySubstrate`, so the sharded build
is bit-identical to the sequential one for every shard count - the
parity suite sweeps shards 1, 2, 3 and 7 through both transports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.engine import require_numpy

require_numpy("repro.parallel.substrate")

import numpy as np  # noqa: E402  (guarded optional dependency)

from repro.engine.substrate import ArraySubstrate  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blocking.substrate import SubstrateSpec
    from repro.core.profiles import ProfileStore


def tokenize_range_task(
    payload: dict[str, Any], shard: tuple[int, int]
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Tokenize profiles ``[lo, hi)``: local vocabulary + pair arrays.

    Returns the shard's token names in first-appearance order, the
    local token id of every ``(profile, token)`` pair (profile-major,
    first-appearance order per profile - the sequential sweep's order
    restricted to the range) and the per-profile token counts.
    """
    lo, hi = shard
    store = payload["store"]
    tokenizer = payload["tokenizer"]
    intern: dict[str, int] = {}
    setdefault = intern.setdefault
    token_ids: list[int] = []
    append = token_ids.append
    counts: list[int] = []
    for profile_id in range(lo, hi):
        tokens = tokenizer.distinct_profile_tokens(store[profile_id])
        counts.append(len(tokens))
        for token in tokens:
            append(setdefault(token, len(intern)))
    return (
        list(intern),
        np.asarray(token_ids, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
    )


class ShardedSubstrate(ArraySubstrate):
    """The array substrate with a sharded tokenization sweep.

    Parameters
    ----------
    store, spec:
        As :class:`~repro.engine.substrate.ArraySubstrate`.
    shards:
        Ranges the sweep splits into (>= 1).
    pool:
        The backend's :class:`~repro.parallel.pool.WorkerPool`; ``None``
        runs the shard task inline per range (the same code path).
    storage:
        Optional :class:`~repro.engine.storage.ArrayStore`; when given,
        the merged pair arrays (and every inherited structure) spill to
        memmaps exactly as in the sequential substrate.
    """

    def __init__(
        self,
        store: "ProfileStore",
        spec: "SubstrateSpec",
        *,
        shards: int = 1,
        pool: Any = None,
        storage: Any = None,
    ) -> None:
        super().__init__(store, spec, storage=storage)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.pool = pool

    def _tokenize(self) -> tuple[list[str], np.ndarray, np.ndarray]:
        from repro.parallel.plan import ShardPlan

        plan = ShardPlan.uniform(len(self.store), self.shards)
        ranges = list(plan.ranges())
        payload = {"store": self.store, "tokenizer": self.spec.tokenizer}
        if self.pool is None:
            results = [tokenize_range_task(payload, shard) for shard in ranges]
        else:
            results = self.pool.run(tokenize_range_task, payload, ranges)

        # Merge: shard vocabularies fold into the global intern map in
        # shard order; local ids remap through one gather per shard.
        # With storage, remapped shard chunks spill straight to disk.
        intern: dict[str, int] = {}
        setdefault = intern.setdefault
        token_chunks: list[np.ndarray] = []
        profile_chunks: list[np.ndarray] = []
        token_writer = None if self.storage is None else self.storage.writer(np.int64)
        profile_writer = (
            None if self.storage is None else self.storage.writer(np.int64)
        )
        for (names, local_tokens, counts), (lo, hi) in zip(results, ranges):
            mapping = np.fromiter(
                (setdefault(name, len(intern)) for name in names),
                dtype=np.int64,
                count=len(names),
            )
            tokens = mapping[local_tokens]
            profiles = np.repeat(np.arange(lo, hi, dtype=np.int64), counts)
            if token_writer is not None and profile_writer is not None:
                token_writer.append(tokens)
                profile_writer.append(profiles)
            else:
                token_chunks.append(tokens)
                profile_chunks.append(profiles)
        if token_writer is not None and profile_writer is not None:
            return list(intern), token_writer.finish(), profile_writer.finish()
        if token_chunks:
            pair_tokens = np.concatenate(token_chunks)
            pair_profiles = np.concatenate(profile_chunks)
        else:
            pair_tokens = np.empty(0, dtype=np.int64)
            pair_profiles = np.empty(0, dtype=np.int64)
        return list(intern), pair_tokens, pair_profiles

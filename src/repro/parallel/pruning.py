"""Sharded Meta-blocking pruning: the node kernels fanned out per owner.

The sharded counterpart of :mod:`repro.engine.pruning`.  The expensive
parts of graph pruning decompose along the same axes the rest of the
parallel layer already uses:

* the weighted Blocking Graph arrives pre-built (sharded, via
  :func:`repro.parallel.graph.sharded_blocking_graph`);
* node-pruning statistics (WNP local means, CNP per-node top-k) run per
  *owner shard* of the ``(owner, other)``-sorted directed entries - an
  owner's entries are contiguous, so per-node accumulation order and
  top-k selection are exactly the sequential kernel's
  (:func:`repro.parallel.tasks.node_threshold_task` /
  :func:`~repro.parallel.tasks.node_topk_task`);
* the survivors' final ranking reuses the per-shard stable sorts plus
  the exact ``(-weight, i, j)`` k-way merge of
  :class:`~repro.parallel.merge.ShardMerger`.

Global scalar aggregates (the WEP mean, the CEP budget threshold) stay
in the parent: one sequential ``cumsum``/``argpartition`` over the edge
array costs far less than a fan-out would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.engine import require_numpy

require_numpy("repro.parallel.pruning")

import numpy as np  # noqa: E402  (guarded optional dependency)

from repro.engine.pruning import (  # noqa: E402
    EdgeArrays,
    require_k,
    directed_entries,
    wep_threshold,
)
from repro.engine.topk import top_k_pairs  # noqa: E402
from repro.parallel.merge import ShardMerger  # noqa: E402
from repro.parallel.plan import ShardPlan  # noqa: E402
from repro.parallel.pool import WorkerPool  # noqa: E402
from repro.parallel.tasks import (  # noqa: E402
    node_threshold_task,
    node_topk_task,
    ranked_sort_task,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.weights import ArrayBlockingGraph


def _empty() -> EdgeArrays:
    empty = np.empty(0, dtype=np.int64)
    return empty, empty, np.empty(0, dtype=np.float64)


def _ranked(
    i: np.ndarray,
    j: np.ndarray,
    weights: np.ndarray,
    shards: int,
    pool: WorkerPool,
) -> EdgeArrays:
    """Rank retained edges by ``(-weight, i, j)``: per-shard stable
    sorts, k-way merged (the :meth:`ParallelBackend.ranked_edges`
    recipe, applied to the survivors only)."""
    if i.size == 0:
        return _empty()
    plan = ShardPlan.uniform(int(i.size), shards)
    chunks = [(i[lo:hi], j[lo:hi], weights[lo:hi]) for lo, hi in plan.ranges()]
    return ShardMerger.merge(pool.run_transient(ranked_sort_task, chunks))


def _directed_payload(
    i: np.ndarray, j: np.ndarray, weights: np.ndarray, n: int
) -> dict[str, Any]:
    """The resident worker payload of the node-pruning fan-outs."""
    owners, _, doubled, edge_ids = directed_entries(i, j, weights)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(owners, minlength=n), out=indptr[1:])
    return {
        "owners": owners,
        "doubled_weights": doubled,
        "edge_ids": edge_ids,
        "tie_i": i[edge_ids],
        "tie_j": j[edge_ids],
        "owner_indptr": indptr,
    }


def sharded_pruned_edges(
    graph: "ArrayBlockingGraph",
    algorithm: str,
    k: int | None,
    shards: int,
    pool: WorkerPool,
) -> EdgeArrays:
    """Retained edges of ``graph`` under ``algorithm``, ranked, sharded.

    Bit-identical to
    :func:`repro.engine.pruning.prune_array_graph` for every shard
    count; ``algorithm`` must be canonical and the cardinality
    algorithms need their ``k`` resolved by the dispatcher.
    """
    i, j, weights = graph.edges()
    m = int(i.size)
    if m == 0:
        return _empty()
    n = graph.index.n_profiles

    if algorithm == "WEP":
        mask = weights >= wep_threshold(weights)
    elif algorithm == "CEP":
        # One argpartition in the parent selects and ranks the budget.
        require_k(algorithm, k)
        selected = top_k_pairs(i, j, weights, int(k))
        return i[selected], j[selected], weights[selected]
    elif algorithm in ("WNP", "RWNP"):
        payload = _directed_payload(i, j, weights, n)
        plan = ShardPlan.balanced(payload["owner_indptr"], shards)
        results = pool.run(node_threshold_task, payload, plan.ranges())
        sums = np.concatenate([result["sums"] for result in results])
        counts = np.concatenate([result["counts"] for result in results])
        thresholds = np.zeros(n, dtype=np.float64)
        np.divide(sums, counts, out=thresholds, where=counts > 0)
        clears_i = weights >= thresholds[i]
        clears_j = weights >= thresholds[j]
        mask = clears_i | clears_j if algorithm == "WNP" else clears_i & clears_j
    elif algorithm in ("CNP", "RCNP"):
        require_k(algorithm, k)
        payload = _directed_payload(i, j, weights, n)
        payload["k"] = int(k)
        plan = ShardPlan.balanced(payload["owner_indptr"], shards)
        selections = pool.run(node_topk_task, payload, plan.ranges())
        votes = np.zeros(m, dtype=np.int64)
        live = [chunk for chunk in selections if chunk.size]
        if live:
            np.add.at(votes, np.concatenate(live), 1)  # repro-analyze: ignore[determinism] integer vote count, order-independent
        mask = votes >= 1 if algorithm == "CNP" else votes == 2
    else:
        raise ValueError(
            f"no sharded kernel for pruning algorithm {algorithm!r}; "
            "expected one of WEP, CEP, WNP, CNP, RWNP, RCNP"
        )
    return _ranked(i[mask], j[mask], weights[mask], shards, pool)

"""Shard task functions executed by the :class:`~repro.parallel.pool.WorkerPool`.

Every function here is a module-level ``task(payload, shard_arg)`` so it
pickles by reference into worker processes.  Each one is the *restriction
of a sequential engine pass to a contiguous shard*: the sequential
kernels in :mod:`repro.engine` walk their event streams row-major, so a
contiguous row range owns a contiguous slice of that stream, per-key
accumulation order is preserved inside the shard, and concatenating (or
k-way merging) per-shard outputs in plan order reproduces the sequential
arrays bit for bit.  The inline (``workers=0``) and process modes run
exactly this code either way.

Payloads are plain dicts of numpy arrays plus scalars - pickle- and
memmap-shippable by construction (see :mod:`repro.parallel.pool`).
"""

from __future__ import annotations

from typing import Any

from repro.engine import require_numpy

require_numpy("repro.parallel.tasks")

import numpy as np  # noqa: E402  (guarded optional dependency)

from repro.engine.csr import multi_arange  # noqa: E402


def _empty_rows(lo: int, hi: int) -> dict[str, Any]:
    return {
        "row_lengths": np.zeros(hi - lo, dtype=np.int64),
        "neighbors": np.empty(0, dtype=np.int64),
        "raw": np.empty(0, dtype=np.float64),
        "first": np.empty(0, dtype=np.int64),
        "valid_count": 0,
    }


def graph_rows_task(payload: dict[str, Any], shard: tuple[int, int]) -> dict[str, Any]:
    """Blocking-Graph rows of the owners in ``[lo, hi)``.

    The restriction of :meth:`ArrayBlockingGraph._build_rows
    <repro.engine.weights.ArrayBlockingGraph>` to one owner shard: the
    shard's (owner, block, member) expansion is the contiguous slice of
    the global event stream owned by those profiles, and an edge's owner
    lives in exactly one shard, so the per-edge ``bincount``
    accumulation adds the same contributions in the same order as the
    sequential pass.  ``first`` holds first-encounter positions local to
    the shard's valid-event stream; the parent offsets them by the
    preceding shards' ``valid_count`` to recover the global indexes.
    """
    lo, hi = shard
    if hi <= lo:
        return _empty_rows(lo, hi)
    n = payload["n"]
    pb_indptr = payload["pb_indptr"]
    pb_indices = payload["pb_indices"]
    bp_indptr = payload["bp_indptr"]
    bp_indices = payload["bp_indices"]
    contributions = payload["contributions"]
    sources = payload["sources"]
    clean_clean = payload["clean_clean"]
    block_sizes = np.diff(bp_indptr)

    row_ptr = np.asarray(pb_indptr[lo : hi + 1])
    incidence = np.asarray(pb_indices[row_ptr[0] : row_ptr[-1]])
    incidence_counts = block_sizes[incidence]
    owners = np.repeat(
        np.repeat(np.arange(lo, hi, dtype=np.int64), np.diff(row_ptr)),
        incidence_counts,
    )
    neighbors = bp_indices[multi_arange(bp_indptr[incidence], incidence_counts)]
    contribution = np.repeat(contributions[incidence], incidence_counts)

    valid = neighbors != owners
    if clean_clean:
        valid &= sources[neighbors] != sources[owners]
    owners = owners[valid]
    neighbors = neighbors[valid]
    contribution = contribution[valid]
    if owners.size == 0:
        return _empty_rows(lo, hi)

    keys = owners * n + neighbors
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    group_heads = np.empty(sorted_keys.size, dtype=bool)
    group_heads[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=group_heads[1:])
    unique_keys = sorted_keys[group_heads]
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[order] = np.cumsum(group_heads) - 1
    raw = np.bincount(ranks, weights=contribution, minlength=unique_keys.size)

    return {
        "row_lengths": np.bincount(unique_keys // n - lo, minlength=hi - lo),
        "neighbors": unique_keys % n,
        "raw": raw,
        "first": order[group_heads],
        "valid_count": int(owners.size),
    }


def block_pairs_task(
    payload: dict[str, Any], shard: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical block-comparison pairs of the blocks in ``[blo, bhi)``.

    The restriction of :meth:`ArrayPBSCore._enumerate_pairs
    <repro.engine.equality.ArrayPBSCore>` to one block shard.  Pair
    generation is per block (shape batching is only a grouping of the
    work), so the shard's block-major output is the contiguous slice of
    the sequential event arrays owned by those blocks.
    """
    blo, bhi = shard
    empty = np.empty(0, dtype=np.int64)
    if bhi <= blo:
        return empty, empty
    bp_indptr = payload["bp_indptr"]
    bp_indices = payload["bp_indices"]
    cardinalities = np.asarray(payload["cardinalities"][blo:bhi])
    sources = payload["sources"]
    clean_clean = payload["clean_clean"]

    sizes = np.asarray(np.diff(bp_indptr)[blo:bhi])
    indptr = np.zeros(bhi - blo + 1, dtype=np.int64)
    np.cumsum(cardinalities, out=indptr[1:])
    total = int(indptr[-1])
    if total == 0:
        return empty, empty
    pair_i = np.empty(total, dtype=np.int64)
    pair_j = np.empty(total, dtype=np.int64)

    if clean_clean:
        left_sizes = np.zeros(bhi - blo, dtype=np.int64)
        entry_owners = np.repeat(np.arange(bhi - blo, dtype=np.int64), sizes)
        members_all = np.asarray(bp_indices[bp_indptr[blo] : bp_indptr[bhi]])
        np.add.at(left_sizes, entry_owners, sources[members_all] == 0)  # repro-analyze: ignore[determinism] integer count scatter, order-independent
        shapes = left_sizes * (int(sizes.max()) + 1) + sizes
    else:
        shapes = sizes

    for shape in np.unique(shapes):
        batch = np.nonzero((shapes == shape) & (cardinalities > 0))[0]
        if batch.size == 0:
            continue
        size = int(sizes[batch[0]])
        members = bp_indices[
            multi_arange(bp_indptr[blo + batch], np.full(batch.size, size))
        ].reshape(batch.size, size)
        if clean_clean:
            split = int(left_sizes[batch[0]])
            order = np.argsort(sources[members], axis=1, kind="stable")
            members = np.take_along_axis(members, order, axis=1)
            left, right = members[:, :split], members[:, split:]
            raw_i = np.repeat(left, size - split, axis=1).ravel()
            raw_j = np.tile(right, (1, split)).ravel()
        else:
            a, b = np.triu_indices(size, 1)
            raw_i = members[:, a].ravel()
            raw_j = members[:, b].ravel()
        slots = multi_arange(
            indptr[batch], np.full(batch.size, int(cardinalities[batch[0]]))
        )
        pair_i[slots] = np.minimum(raw_i, raw_j)
        pair_j[slots] = np.maximum(raw_i, raw_j)
    return pair_i, pair_j


def window_count_task(
    payload: dict[str, Any], shard: tuple[int, int, tuple[int, ...]]
) -> tuple[np.ndarray, np.ndarray]:
    """Grouped co-occurrence counts of one Neighbor-List position shard.

    The restriction of :meth:`ArrayPSNCore.pair_frequencies
    <repro.engine.similarity.ArrayPSNCore>`: for window distance ``d``
    the events are the aligned pairs ``(entries[p], entries[p + d])``;
    the shard owns positions ``p`` in ``[lo, hi)``.  Counts are integer
    and per-pair disjoint events, so the parent's sum-merge equals the
    sequential single-pass ``np.unique``.
    """
    lo, hi, distances = shard
    entries = payload["entries"]
    sources = payload["sources"]
    clean_clean = payload["clean_clean"]
    n = payload["n_profiles"]
    size = entries.shape[0]
    key_chunks: list[np.ndarray] = []
    for distance in distances:
        if distance < 1 or distance >= size:
            continue
        stop = min(hi, size - distance)
        if lo >= stop:
            continue
        a = np.asarray(entries[lo:stop])
        b = np.asarray(entries[lo + distance : stop + distance])
        if clean_clean:
            valid = sources[a] != sources[b]
        else:
            valid = a != b
        low = np.minimum(a[valid], b[valid])
        high = np.maximum(a[valid], b[valid])
        key_chunks.append(low * n + high)
    if not key_chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    keys = key_chunks[0] if len(key_chunks) == 1 else np.concatenate(key_chunks)
    return np.unique(keys, return_counts=True)


def node_threshold_task(
    payload: dict[str, Any], shard: tuple[int, int]
) -> dict[str, Any]:
    """WNP local means of the owner nodes in ``[lo, hi)``.

    The restriction of :func:`repro.engine.pruning.node_thresholds` to
    one owner shard of the ``(owner, other)``-sorted directed entries:
    every owner's entries are contiguous, so the shard-local
    ``np.bincount`` adds exactly the same weights in the same
    ascending-neighbor order as the sequential kernel - per-node sums
    are bit-identical, and concatenating shard outputs in plan order
    rebuilds the full threshold array.
    """
    lo, hi = shard
    if hi <= lo:
        return {
            "sums": np.empty(0, dtype=np.float64),
            "counts": np.empty(0, dtype=np.int64),
        }
    indptr = payload["owner_indptr"]
    start, stop = int(indptr[lo]), int(indptr[hi])
    owners = np.asarray(payload["owners"][start:stop]) - lo
    weights = np.asarray(payload["doubled_weights"][start:stop])
    return {
        "sums": np.bincount(owners, weights=weights, minlength=hi - lo),
        "counts": np.bincount(owners, minlength=hi - lo),
    }


def node_topk_task(payload: dict[str, Any], shard: tuple[int, int]) -> np.ndarray:
    """CNP top-k selections (edge ids) of the owner nodes in ``[lo, hi)``.

    The restriction of :func:`repro.engine.pruning.node_topk_votes` to
    one owner shard: the lexsort by ``(owner, -weight, i, j)`` and the
    segment-rank truncation at ``k`` only ever compare entries of the
    same owner, and an owner lives in exactly one shard, so the union of
    per-shard selections equals the sequential selection exactly.
    """
    lo, hi = shard
    if hi <= lo:
        return np.empty(0, dtype=np.int64)
    indptr = payload["owner_indptr"]
    start, stop = int(indptr[lo]), int(indptr[hi])
    if start == stop:
        return np.empty(0, dtype=np.int64)
    owners = np.asarray(payload["owners"][start:stop])
    weights = np.asarray(payload["doubled_weights"][start:stop])
    edge_ids = np.asarray(payload["edge_ids"][start:stop])
    tie_i = np.asarray(payload["tie_i"][start:stop])
    tie_j = np.asarray(payload["tie_j"][start:stop])
    k = payload["k"]

    order = np.lexsort((tie_j, tie_i, -weights, owners))
    segment_owner = owners[order]
    heads = np.empty(segment_owner.size, dtype=bool)
    heads[0] = True
    np.not_equal(segment_owner[1:], segment_owner[:-1], out=heads[1:])
    positions = np.arange(segment_owner.size, dtype=np.int64)
    segment_starts = np.maximum.accumulate(np.where(heads, positions, 0))
    return edge_ids[order[positions - segment_starts < k]]


def ranked_sort_task(
    chunk: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank one contiguous slice of scored pairs by ``(-weight, i, j)``.

    A *transient* task (the chunk carries its own data): the ``i``/``j``
    slices are key-sorted (ascending canonical pair), so a stable sort
    on descending weight leaves ties in ascending ``(i, j)`` - the full
    emission order within the shard; the parent's
    :meth:`~repro.parallel.merge.ShardMerger.merge` interleaves shards
    under the same key.
    """
    i, j, weights = chunk
    order = np.argsort(-weights, kind="stable")
    return i[order], j[order], weights[order]


def pps_schedule_task(
    chunk: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One schedule-rank range of the PPS emission (Algorithm 6).

    A *transient* task over the kept Blocking-Graph edges of one whole
    rank-group range, pre-sorted by owner rank.  Inside the shard this
    is exactly the sequential :meth:`ArrayPPSCore.emit_schedule
    <repro.engine.equality.ArrayPPSCore>` math - lexsort by
    ``(rank, -weight, neighbor)``, truncate each owner segment at
    ``k`` - and rank ranges are disjoint and ordered, so the parent
    just concatenates shard outputs.
    """
    owner, neighbor, weight, rank, k = chunk
    empty = np.empty(0, dtype=np.int64)
    if rank.size == 0:
        return empty, empty, np.empty(0, dtype=np.float64)

    emission_order = np.lexsort((neighbor, -weight, rank))
    segment_rank = rank[emission_order]
    heads = np.empty(segment_rank.size, dtype=bool)
    heads[0] = True
    np.not_equal(segment_rank[1:], segment_rank[:-1], out=heads[1:])
    positions = np.arange(segment_rank.size, dtype=np.int64)
    segment_starts = np.maximum.accumulate(np.where(heads, positions, 0))
    selected = emission_order[positions - segment_starts < k]

    i = np.minimum(owner[selected], neighbor[selected])
    j = np.maximum(owner[selected], neighbor[selected])
    return i, j, weight[selected]


def cascade_pairs_task(
    payload: dict[str, Any], chunk: tuple[np.ndarray, np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Tier-0/tier-1 overlap algebra of one contiguous pair shard.

    The restriction of :func:`repro.engine.matching.pair_overlap` to one
    slice of the batch's (left, right) profile-id arrays; the payload
    carries the session's per-profile token-row CSR (shipped once per
    pool).  Pairs are independent events, so concatenating shard outputs
    in plan order reproduces the sequential arrays exactly.
    """
    from repro.engine.matching import pair_overlap

    left, right = chunk
    return pair_overlap(payload["indptr"], payload["tokens"], left, right)


def probe_score_task(payload: dict[str, Any], chunk: list[Any]) -> list[Any]:
    """Score a chunk of read-only probes against a shipped live index.

    The payload carries a pickled snapshot of the incremental session's
    token index and weighter (listener-free copies); each worker probes
    its own copy - enter, score, roll back - so chunks are independent
    and results line up with a sequential ``resolve_one(ingest=False)``
    per item.
    """
    from repro.incremental.resolver import score_probe

    index = payload["index"]
    weighter = payload["weighter"]
    return [score_probe(index, weighter, probe) for probe in chunk]

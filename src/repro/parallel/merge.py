"""Exact re-merging of per-shard outputs.

Two merge shapes cover every sharded kernel:

* :class:`ShardMerger` - k-way merge of per-shard *ranked* comparison
  arrays under the system-wide total order ``(-weight, i, j)``.  The
  merge is comparison-based (no arithmetic on the weights), so the
  merged stream is exactly the sequence a global sort would produce -
  parity with the sequential backends is provable, not approximate.
* :func:`merge_grouped_counts` - sum-merge of per-shard grouped
  ``(key, count)`` arrays, equal to grouping the concatenated raw events
  in one pass (integer counts commute).

Both also handle the degenerate plans the :class:`~repro.parallel.plan.
ShardPlan` constructors can produce: empty shards contribute nothing.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence

from repro.engine import require_numpy

require_numpy("repro.parallel.merge")

import numpy as np  # noqa: E402  (guarded optional dependency)

#: One shard's ranked output: parallel (i, j, weight) arrays, already
#: ordered by ``(-weight, i, j)``.
RankedArrays = tuple[np.ndarray, np.ndarray, np.ndarray]


class ShardMerger:
    """K-way merge of ranked ``(i, j, weight)`` shard outputs.

    Each input must already be sorted by ``(-weight, i, j)``; the merged
    output is the unique interleaving sorted by the same key.  Weights
    are compared, never recomputed, so merging preserves every bit of
    the shard kernels' floating-point results.  (``-0.0`` and ``0.0``
    compare equal, exactly as in ``np.lexsort`` - ties fall through to
    the ``(i, j)`` key either way.)

    Examples
    --------
    >>> import numpy as np
    >>> a = (np.array([0]), np.array([1]), np.array([2.0]))
    >>> b = (np.array([0, 1]), np.array([2, 2]), np.array([3.0, 1.0]))
    >>> i, j, w = ShardMerger.merge([a, b])
    >>> list(zip(i.tolist(), j.tolist(), w.tolist()))
    [(0, 2, 3.0), (0, 1, 2.0), (1, 2, 1.0)]
    """

    @staticmethod
    def merge_iter(
        shards: Sequence[RankedArrays],
    ) -> Iterator[tuple[int, int, float]]:
        """Lazily yield merged ``(i, j, weight)`` tuples best-first.

        ``heapq.merge`` pays one Python-level comparison per element -
        the same order of per-element cost as materializing the
        ``Comparison`` objects every consumer builds next, so the merge
        never dominates emission.
        """
        streams = []
        for i, j, weights in shards:
            if i.size == 0:
                continue
            streams.append(zip(i.tolist(), j.tolist(), weights.tolist(), strict=True))
        return heapq.merge(
            *streams, key=lambda item: (-item[2], item[0], item[1])
        )

    @staticmethod
    def merge(shards: Sequence[RankedArrays]) -> RankedArrays:
        """Materialize the k-way merge as three parallel arrays."""
        live = [shard for shard in shards if shard[0].size]
        if not live:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=np.float64)
        if len(live) == 1:
            i, j, weights = live[0]
            return (
                np.asarray(i, dtype=np.int64),
                np.asarray(j, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
            )
        merged = list(ShardMerger.merge_iter(live))
        i = np.fromiter((item[0] for item in merged), np.int64, len(merged))
        j = np.fromiter((item[1] for item in merged), np.int64, len(merged))
        weights = np.fromiter(
            (item[2] for item in merged), np.float64, len(merged)
        )
        return i, j, weights

    @staticmethod
    def concat(shards: Sequence[RankedArrays]) -> RankedArrays:
        """Ordered concatenation, for shards over a *disjoint, ordered*
        primary key (block ranges, schedule-rank ranges): the merged
        stream is just the shards in plan order."""
        live = [shard for shard in shards if shard[0].size]
        if not live:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=np.float64)
        return (
            np.concatenate([shard[0] for shard in live]),
            np.concatenate([shard[1] for shard in live]),
            np.concatenate([shard[2] for shard in live]),
        )


def merge_grouped_counts(
    grouped: Iterable[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Sum-merge per-shard ``(sorted unique keys, counts)`` pairs.

    Exactly equivalent to ``np.unique(concatenated_raw_events,
    return_counts=True)``: keys are merged sorted-unique, counts add.
    Used by the sharded window kernels, where each shard counts the
    co-occurrence events of a contiguous slice of the Neighbor List.
    """
    live = [(keys, counts) for keys, counts in grouped if keys.size]
    if not live:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if len(live) == 1:
        keys, counts = live[0]
        return keys.astype(np.int64, copy=False), counts.astype(np.int64, copy=False)
    keys = np.concatenate([item[0] for item in live])
    counts = np.concatenate([item[1] for item in live]).astype(np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_counts = counts[order]
    heads = np.empty(sorted_keys.size, dtype=bool)
    heads[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=heads[1:])
    group_ids = np.cumsum(heads) - 1
    totals = np.bincount(group_ids, weights=sorted_counts).astype(np.int64)
    return sorted_keys[heads], totals

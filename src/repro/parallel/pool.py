"""The worker pool: process fan-out with one-shot payload shipping.

A :class:`WorkerPool` runs *shard tasks* - module-level functions
``task(payload, shard_arg)`` from :mod:`repro.parallel.tasks` - over a
shared read-only payload of numpy arrays:

* ``workers=0`` (and any single-shard run) executes inline in the
  calling process: the exact same shard code and merge path, no
  processes.  This is the mode the parity suite sweeps exhaustively,
  and the sensible default on single-core machines.
* ``workers>=2`` spawns a ``multiprocessing`` pool (fork start method
  when the platform offers it) and ships the payload **once per pool**
  through the initializer, not once per task - shard tasks then carry
  only their ``(lo, hi)`` ranges.

Payload shipping is pluggable:

* ``ship="pickle"`` (default) - arrays travel through the initializer's
  pickle; simple, always works.
* ``ship="memmap"`` - arrays are written once to ``.npy`` files in a
  private temp directory and workers open them with
  ``np.load(mmap_mode="r")``: the OS page cache shares one physical
  copy across every worker, which is the right call when the CSR
  payload is large relative to the per-shard compute.

The pool re-ships lazily: consecutive :meth:`run` calls with the same
payload object reuse the live pool, a new payload recreates it.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine import require_numpy

require_numpy("repro.parallel.pool")

import numpy as np  # noqa: E402  (guarded optional dependency)

SHIP_MODES = ("pickle", "memmap")

#: Worker-process global holding the resolved payload (set by the pool
#: initializer, read by :func:`_worker_run`).
_PAYLOAD: dict[str, Any] | None = None


@dataclass(frozen=True)
class _ArrayRef:
    """A memmap-shipped array: enough metadata to reopen it read-only."""

    path: str

    def resolve(self) -> np.ndarray:
        return np.load(self.path, mmap_mode="r")


def _resolve_payload(shipped: dict[str, Any]) -> dict[str, Any]:
    return {
        key: value.resolve() if isinstance(value, _ArrayRef) else value
        for key, value in shipped.items()
    }


def _worker_init(shipped: dict[str, Any]) -> None:
    global _PAYLOAD
    _PAYLOAD = _resolve_payload(shipped)


def _worker_run(call: tuple[Callable[..., Any], Any]) -> Any:
    task, shard_arg = call
    assert _PAYLOAD is not None, "worker used before initialization"
    return task(_PAYLOAD, shard_arg)


def _worker_run_transient(call: tuple[Callable[..., Any], Any]) -> Any:
    task, shard_arg = call
    return task(shard_arg)


#: Initializer payload for pools that only ever run transient tasks.
_NO_PAYLOAD: dict[str, Any] = {}


def default_worker_count() -> int:
    """The ``workers=None`` resolution: one worker per visible core."""
    return os.cpu_count() or 1


class WorkerPool:
    """Fan shard tasks over a payload, inline or across processes.

    Parameters
    ----------
    workers:
        ``0``/``1`` - inline execution (no processes); ``>= 2`` - a
        process pool of that size; ``None`` - one per visible core.
    ship:
        Payload transport for process mode: ``"pickle"`` or
        ``"memmap"`` (see module docstring).  Ignored inline.
    """

    def __init__(self, workers: int | None = 0, ship: str = "pickle") -> None:
        if ship not in SHIP_MODES:
            raise ValueError(f"ship must be one of {SHIP_MODES}, got {ship!r}")
        workers = default_worker_count() if workers is None else int(workers)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.ship = ship
        self._pool: Any = None
        self._payload: dict[str, Any] | None = None  # identity for reuse
        self._tempdir: str | None = None
        self._finalizer = weakref.finalize(self, WorkerPool._cleanup, None, None)

    # -- lifecycle -----------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether this pool actually uses worker processes."""
        return self.workers >= 2

    def _ship_payload(self, payload: dict[str, Any]) -> dict[str, Any]:
        if self.ship != "memmap":
            return payload
        self._tempdir = tempfile.mkdtemp(prefix="repro-parallel-")
        shipped: dict[str, Any] = {}
        for key, value in payload.items():
            if isinstance(value, np.ndarray):
                path = os.path.join(self._tempdir, f"{key}.npy")
                np.save(path, value)
                shipped[key] = _ArrayRef(path)
            else:
                shipped[key] = value
        return shipped

    def _ensure_pool(self, payload: dict[str, Any]) -> Any:
        if self._pool is not None and self._payload is payload:
            return self._pool
        self.close()
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        pool = context.Pool(
            processes=self.workers,
            initializer=_worker_init,
            initargs=(self._ship_payload(payload),),
        )
        self._pool = pool
        self._payload = payload
        tempdir = self._tempdir
        self._finalizer.detach()
        self._finalizer = weakref.finalize(
            self, WorkerPool._cleanup, pool, tempdir
        )
        return pool

    @staticmethod
    def _cleanup(pool: Any, tempdir: str | None) -> None:
        if pool is not None:
            pool.terminate()
            pool.join()
        if tempdir is not None:
            shutil.rmtree(tempdir, ignore_errors=True)

    def close(self) -> None:
        """Tear down the live pool (and any memmap files) now."""
        WorkerPool._cleanup(self._pool, self._tempdir)
        self._pool = None
        self._payload = None
        self._tempdir = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def run(
        self,
        task: Callable[[dict[str, Any], Any], Any],
        payload: dict[str, Any],
        shard_args: Sequence[Any],
    ) -> list[Any]:
        """``[task(payload, arg) for arg in shard_args]``, maybe in parallel.

        Results come back in shard order regardless of execution order.
        Falls back to inline execution when the pool has no workers or
        there is at most one shard to run.
        """
        if not self.parallel or len(shard_args) <= 1:
            return [task(payload, arg) for arg in shard_args]
        pool = self._ensure_pool(payload)
        try:
            return pool.map(
                _worker_run, [(task, arg) for arg in shard_args], chunksize=1
            )
        except BaseException:
            # A worker crash (or parent interrupt) leaves the pool - and
            # any memmap-shipped payload files - unusable; tear both down
            # now instead of waiting for garbage collection.
            self.close()
            raise

    def run_transient(
        self,
        task: Callable[[Any], Any],
        shard_args: Sequence[Any],
    ) -> list[Any]:
        """``[task(arg) for arg in shard_args]`` with self-contained args.

        For tasks whose arguments carry their own (per-shard) data - a
        slice of scored pairs to rank, say - instead of reading the
        resident payload.  Reuses whatever pool is live (the resident
        payload is simply ignored), so interleaving resident and
        transient runs never re-ships anything; only if no pool exists
        yet is one started, payload-free.
        """
        if not self.parallel or len(shard_args) <= 1:
            return [task(arg) for arg in shard_args]
        pool = (
            self._pool
            if self._pool is not None
            else self._ensure_pool(_NO_PAYLOAD)
        )
        try:
            return pool.map(
                _worker_run_transient,
                [(task, arg) for arg in shard_args],
                chunksize=1,
            )
        except BaseException:
            self.close()
            raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._pool is not None else "idle"
        return f"WorkerPool(workers={self.workers}, ship={self.ship!r}, {state})"

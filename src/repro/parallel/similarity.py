"""Sharded window scoring for the similarity methods (LS/GS-PSN).

:class:`ParallelPSNCore` subclasses the sequential
:class:`~repro.engine.similarity.ArrayPSNCore` and shards both halves of
the window pass:

* **counting** - the Neighbor List positions split into contiguous
  ranges; each worker counts the co-occurrence events its positions own
  (across the whole requested distance range) and returns grouped
  ``(key, count)`` arrays, which sum-merge into exactly the sequential
  single-pass ``np.unique`` (integer counts commute);
* **ranking** - weights are finalized elementwise in the parent (they
  depend on per-profile appearance counts, not on the sharding), then
  contiguous slices of the key-sorted pairs are stable-sorted by
  descending weight per shard and k-way merged under the exact
  ``(-weight, i, j)`` total order by
  :class:`~repro.parallel.merge.ShardMerger`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.profiles import ProfileStore
from repro.engine import require_numpy
from repro.neighborlist.rcf import NeighborWeighting

require_numpy("repro.parallel.similarity")

import numpy as np  # noqa: E402  (guarded optional dependency)

from repro.engine.similarity import ArrayPSNCore  # noqa: E402
from repro.parallel.merge import ShardMerger, merge_grouped_counts  # noqa: E402
from repro.parallel.plan import ShardPlan  # noqa: E402
from repro.parallel.pool import WorkerPool  # noqa: E402
from repro.parallel.tasks import ranked_sort_task, window_count_task  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.neighborlist.neighbor_list import NeighborList


class ParallelPSNCore(ArrayPSNCore):
    """Window scoring over one Neighbor List, sharded by positions."""

    __slots__ = ("shards", "pool", "_count_payload")

    def __init__(
        self,
        neighbor_list: "NeighborList",
        store: ProfileStore,
        weighting: NeighborWeighting,
        shards: int,
        pool: WorkerPool,
    ) -> None:
        super().__init__(neighbor_list, store, weighting)
        self.shards = shards
        self.pool = pool
        # One payload object for the whole core: the pool re-ships only
        # when the payload changes, so every window of an LS-PSN run
        # reuses the same worker state.
        self._count_payload = {
            "entries": self.entries,
            "sources": self._sources,
            "clean_clean": self._clean_clean,
            "n_profiles": self.n_profiles,
        }

    def pair_frequencies(
        self, distances: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        plan = ShardPlan.uniform(int(self.entries.size), self.shards)
        args = [
            (lo, hi, tuple(int(d) for d in distances))
            for lo, hi in plan.ranges()
        ]
        grouped = self.pool.run(window_count_task, self._count_payload, args)
        keys, counts = merge_grouped_counts(grouped)
        return keys // self.n_profiles, keys % self.n_profiles, counts

    def window_arrays(
        self, distances: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        i, j, frequencies = self.pair_frequencies(distances)
        weights = self._vector_weights(i, j, frequencies)
        if i.size == 0:
            return i, j, weights.astype(np.float64)
        plan = ShardPlan.uniform(int(i.size), self.shards)
        chunks = [
            (i[lo:hi], j[lo:hi], weights[lo:hi]) for lo, hi in plan.ranges()
        ]
        ranked = self.pool.run_transient(ranked_sort_task, chunks)
        return ShardMerger.merge(ranked)

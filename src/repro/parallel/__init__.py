"""Sharded multi-core execution: the ``numpy-parallel`` backend.

The array engine (:mod:`repro.engine`) made every hot path a handful of
global numpy passes - but a single process caps them at one core.  This
package shards that work across worker processes and re-merges a
*globally correct* progressive stream:

* :mod:`repro.parallel.plan` - :class:`ShardPlan`: partitions profiles
  (or blocks, or positions) into contiguous ranges, size-balanced by
  postings mass read off a CSR ``indptr``;
* :mod:`repro.parallel.pool` - :class:`WorkerPool`: a fork-based process
  pool that ships a payload of CSR arrays once per pool (pickled, or via
  a shared ``np.memmap``) and fans shard tasks over it; ``workers=0``
  runs the identical shard code inline, which is what the parity suite
  exercises exhaustively;
* :mod:`repro.parallel.merge` - :class:`ShardMerger`: k-way merges
  per-shard ranked outputs preserving the exact system-wide
  ``(-weight, i, j)`` total order, plus the grouped-count merge the
  window kernels use;
* :mod:`repro.parallel.graph` / :mod:`repro.parallel.equality` /
  :mod:`repro.parallel.similarity` - sharded builds of the Blocking
  Graph, the PBS event arrays, the PPS emission schedule and the PSN
  window counts, each engineered to reproduce the sequential ``numpy``
  backend *bit-identically* (shards are contiguous slices of the exact
  event streams the sequential kernels walk, so per-key accumulation
  order is preserved);
* :mod:`repro.parallel.backend` - :class:`ParallelBackend`, registered
  as ``"numpy-parallel"`` in :data:`repro.registry.backends`.

Select it like any other backend - ``resolve(data, method="PPS",
backend="numpy-parallel")``, ``ERPipeline().parallel(workers=4)``,
``PPS(store, backend="numpy-parallel")`` - and the emission stream is
the same stream ``"numpy"`` produces, comparison for comparison
(property-tested under ``tests/parallel/``).

Parallelism pays off when candidate scoring dominates: large block
collections (graph build), wide window ranges (GS-PSN), big probe
batches (:meth:`~repro.incremental.resolver.IncrementalResolver.resolve_many`).
See ``docs/parallel.md`` for the sharding model and worker-count
guidance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Give type checkers the real symbols behind the lazy __getattr__
    # below (which they cannot see through).
    from repro.parallel.backend import ParallelBackend
    from repro.parallel.merge import ShardMerger, merge_grouped_counts
    from repro.parallel.plan import Shard, ShardPlan
    from repro.parallel.pool import WorkerPool

__all__ = [
    "Shard",
    "ShardPlan",
    "ShardMerger",
    "WorkerPool",
    "ParallelBackend",
    "merge_grouped_counts",
]

# Submodules import numpy at module level (they are array code through
# and through); the package itself stays importable without it - like
# repro.engine - because the backends registry imports
# repro.parallel.backend to register "numpy-parallel" on machines that
# may only ever use backend="python".
_EXPORTS = {
    "Shard": "repro.parallel.plan",
    "ShardPlan": "repro.parallel.plan",
    "ShardMerger": "repro.parallel.merge",
    "merge_grouped_counts": "repro.parallel.merge",
    "WorkerPool": "repro.parallel.pool",
    "ParallelBackend": "repro.parallel.backend",
}


def __getattr__(name: str) -> Any:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.parallel' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)

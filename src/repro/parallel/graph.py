"""The sharded Blocking-Graph build.

The graph build is the dominant initialization cost of the equality
methods (PPS, PBS, ONLINE): every (profile, block, member) incidence
expands into a co-occurrence event, and the events group into weighted
edges.  The weight of edge ``(i, j)`` depends only on the pair's shared
blocks and global per-block statistics, so neighborhoods decompose
per-entity (the extended paper's observation): each worker builds the
graph rows of one contiguous owner range, and the parent concatenates.

Exactness argument (the parity suite asserts it end to end):

* the sequential :meth:`~repro.engine.weights.ArrayBlockingGraph._build_rows`
  expands events owner-major, so an owner shard owns a *contiguous
  slice* of the global event stream;
* an edge's owner lives in exactly one shard, so each edge's
  contributions accumulate inside one worker, in the same left-to-right
  order as sequentially - bit-identical ``bincount`` sums;
* per-shard first-encounter indexes are local to the shard's
  valid-event slice; adding the preceding shards' valid-event counts
  recovers the global indexes exactly;
* preparation (EJS degrees) and finalization need the whole graph and
  stay in the parent - elementwise work over already-merged rows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.profiles import ERType
from repro.engine import require_numpy

require_numpy("repro.parallel.graph")

import numpy as np  # noqa: E402  (guarded optional dependency)

from repro.engine.weights import (  # noqa: E402
    ArrayBlockingGraph,
    ArrayWeighting,
    make_array_scheme,
)
from repro.parallel.plan import ShardPlan  # noqa: E402
from repro.parallel.pool import WorkerPool  # noqa: E402
from repro.parallel.tasks import graph_rows_task  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.csr import ArrayProfileIndex


def graph_payload(
    index: "ArrayProfileIndex", scheme: ArrayWeighting
) -> dict[str, Any]:
    """The worker payload for the CSR-reading shard tasks.

    One dict serves both :func:`~repro.parallel.tasks.graph_rows_task`
    and :func:`~repro.parallel.tasks.block_pairs_task`, so a method that
    runs both (PBS) keeps one resident payload - the pool never
    re-ships.
    """
    return {
        "n": index.n_profiles,
        "clean_clean": index.store.er_type is ERType.CLEAN_CLEAN,
        "sources": index.sources,
        "pb_indptr": index.pb_indptr,
        "pb_indices": index.pb_indices,
        "bp_indptr": index.bp_indptr,
        "bp_indices": index.bp_indices,
        "cardinalities": index.block_cardinalities,
        "contributions": scheme.block_contributions(),
    }


def sharded_blocking_graph(
    index: "ArrayProfileIndex",
    weighting: "ArrayWeighting | str",
    shards: int,
    pool: WorkerPool,
    plan: ShardPlan | None = None,
    payload: dict[str, Any] | None = None,
    storage: Any = None,
) -> ArrayBlockingGraph:
    """Build an :class:`ArrayBlockingGraph` from per-shard row builds.

    ``plan`` defaults to contiguous profile ranges balanced by postings
    mass read off the profile->blocks CSR ``indptr`` - the cost proxy
    for a neighborhood's scoring work.  The result is bit-identical to
    ``ArrayBlockingGraph(index, weighting)``.  ``storage`` (an
    :class:`~repro.engine.storage.ArrayStore`) spills the merged row
    arrays to memmaps as the shard results stream in, so the parent
    never holds the whole edge set in RAM.
    """
    scheme = (
        make_array_scheme(weighting, index)
        if isinstance(weighting, str)
        else weighting
    )
    n = index.n_profiles
    if plan is None:
        plan = ShardPlan.balanced(index.pb_indptr, shards)
    if payload is None:
        payload = graph_payload(index, scheme)
    results = pool.run(graph_rows_task, payload, plan.ranges())

    row_lengths = np.concatenate(
        [result["row_lengths"] for result in results]
    ) if results else np.zeros(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(row_lengths, out=indptr[1:])

    # Local first-encounter indexes -> global: shift each shard by the
    # valid-event mass of everything before it.
    if storage is not None:
        neighbor_writer = storage.writer(np.int64)
        raw_writer = storage.writer(np.float64)
        first_writer = storage.writer(np.int64)
        offset = 0
        for result in results:
            neighbor_writer.append(result["neighbors"])
            raw_writer.append(result["raw"])
            first_writer.append(result["first"] + offset)
            offset += result["valid_count"]
        return ArrayBlockingGraph.from_rows(
            index,
            scheme,
            indptr,
            neighbor_writer.finish(),
            raw_writer.finish(),
            first_writer.finish(),
            storage=storage,
        )

    neighbors = np.concatenate([result["neighbors"] for result in results])
    raw = np.concatenate([result["raw"] for result in results])
    offset = 0
    shifted = []
    for result in results:
        shifted.append(result["first"] + offset)
        offset += result["valid_count"]
    first_event_index = (
        np.concatenate(shifted) if shifted else np.empty(0, dtype=np.int64)
    )
    return ArrayBlockingGraph.from_rows(
        index, scheme, indptr, neighbors, raw, first_event_index
    )

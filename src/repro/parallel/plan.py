"""Shard planning: contiguous, mass-balanced partitions of a CSR axis.

A :class:`ShardPlan` splits the rows of a CSR structure - profiles of a
Blocking Graph, blocks of a collection, positions of a Neighbor List -
into *contiguous* index ranges.  Contiguity is what makes the sharded
kernels provably exact: every sequential engine pass walks its event
stream row-major, so a contiguous row range owns a contiguous slice of
that event stream, and concatenating per-shard outputs in plan order
reproduces the sequential arrays bit for bit (see
:mod:`repro.parallel.graph`).

Balance comes from the ``indptr`` array itself: ``diff(indptr)`` is each
row's postings mass - a faithful proxy for its scoring cost - and the
plan cuts the cumulative mass into near-equal parts.  Degenerate inputs
(empty rows, single profile, more shards than rows) yield empty trailing
shards, which every consumer treats as a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.engine import require_numpy

require_numpy("repro.parallel.plan")

import numpy as np  # noqa: E402  (guarded optional dependency)


@dataclass(frozen=True)
class Shard:
    """One contiguous row range ``[lo, hi)`` of the sharded axis."""

    lo: int
    hi: int

    def __len__(self) -> int:
        return max(0, self.hi - self.lo)

    @property
    def empty(self) -> bool:
        return self.hi <= self.lo


class ShardPlan:
    """An ordered partition of ``[0, n)`` into contiguous shards.

    Build with :meth:`balanced` (mass from a CSR ``indptr``),
    :meth:`from_masses` (explicit per-row costs) or :meth:`uniform`
    (equal row counts).  Shards are disjoint, cover ``[0, n)`` exactly,
    and come back in ascending order - the invariant the mergers rely
    on.

    Examples
    --------
    >>> plan = ShardPlan.uniform(10, 3)
    >>> [(shard.lo, shard.hi) for shard in plan]
    [(0, 3), (3, 7), (7, 10)]
    >>> ShardPlan.uniform(2, 4).shard_count  # more shards than rows
    4
    """

    def __init__(self, shards: Sequence[Shard], n: int) -> None:
        previous = 0
        for shard in shards:
            if shard.lo != previous or shard.hi < shard.lo:
                raise ValueError(
                    f"shards must form a contiguous partition of [0, {n}); "
                    f"got {[(s.lo, s.hi) for s in shards]}"
                )
            previous = shard.hi
        if previous != n:
            raise ValueError(
                f"shards cover [0, {previous}) but the axis has {n} rows"
            )
        self.shards = tuple(shards)
        self.n = n

    # -- constructors --------------------------------------------------------

    @classmethod
    def balanced(cls, indptr: np.ndarray, shards: int) -> "ShardPlan":
        """Cut CSR rows into ``shards`` ranges of near-equal postings mass.

        ``indptr`` is any CSR row-pointer array (length ``n + 1``); the
        mass of row ``r`` is ``indptr[r + 1] - indptr[r]``.  Rows with
        zero mass add nothing, so they attach to whichever shard the cut
        lands them in.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        return cls.from_masses(np.diff(indptr), shards)

    @classmethod
    def from_masses(cls, masses: np.ndarray, shards: int) -> "ShardPlan":
        """Balanced contiguous partition for explicit per-row masses."""
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        masses = np.asarray(masses, dtype=np.int64)
        n = int(masses.size)
        cumulative = np.cumsum(masses)
        total = int(cumulative[-1]) if n else 0
        # Ideal cut points at k/shards of the total mass; searchsorted
        # finds the first row pushing the running mass past each cut.
        targets = (np.arange(1, shards, dtype=np.float64) * total) / shards
        cuts = np.searchsorted(cumulative, targets, side="left") + 1
        bounds = np.concatenate(([0], cuts, [n]))
        # Monotone clip: a huge row can swallow several cut points, which
        # would make boundaries regress; later shards then come up empty.
        bounds = np.maximum.accumulate(np.minimum(bounds, n))
        return cls(
            [Shard(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)],
            n,
        )

    @classmethod
    def uniform(cls, n: int, shards: int) -> "ShardPlan":
        """Equal row-count partition (mass-agnostic fallback)."""
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if n < 0:
            raise ValueError(f"axis size must be >= 0, got {n}")
        bounds = [round(k * n / shards) for k in range(shards + 1)]
        return cls(
            [Shard(lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)], n
        )

    # -- views ---------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def ranges(self) -> list[tuple[int, int]]:
        """The plan as plain ``(lo, hi)`` tuples (worker task arguments)."""
        return [(shard.lo, shard.hi) for shard in self.shards]

    def nonempty(self) -> list[Shard]:
        """Shards that actually own rows."""
        return [shard for shard in self.shards if not shard.empty]

    def masses(self, indptr: np.ndarray) -> list[int]:
        """Postings mass owned by each shard under ``indptr``."""
        indptr = np.asarray(indptr, dtype=np.int64)
        return [
            int(indptr[shard.hi] - indptr[shard.lo]) for shard in self.shards
        ]

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardPlan({self.ranges()!r}, n={self.n})"

"""Shared component registry for every pluggable layer of the system.

One registry class serves blocking schemes, meta-blocking weighting
schemes, progressive methods and match functions uniformly, replacing the
three ad-hoc module-level dicts the seed grew (``progressive.base``,
``metablocking.weights`` and the implicit matcher classes).

Names are *normalized* on both registration and lookup - every
non-alphanumeric character is dropped and the rest upper-cased - so the
paper's spelling and any reasonable user spelling address the same
component: ``"SA-PSN" == "sapsn" == "sa_psn"``.  The canonical (display)
spelling is whatever the component was registered under, which for the
progressive methods is the paper's acronym with hyphens.

Error messages surface the accepted constructor signature of the
component, so a wrong kwarg tells the caller what the component actually
takes instead of a bare ``TypeError``.

User extensions register through the same entry points::

    from repro.registry import progressive_methods

    @progressive_methods.register("MY-PM", aliases=("mypm",))
    class MyMethod(ProgressiveMethod):
        ...

The four stock registries lazily import their defining modules on first
lookup, so ``import repro.registry`` alone stays cheap and cycle-free.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


def normalize(name: str) -> str:
    """Canonical lookup key: upper-cased alphanumerics only.

    >>> normalize("SA-PSN") == normalize("sapsn") == normalize("sa_psn")
    True
    """
    key = "".join(ch for ch in name if ch.isalnum()).upper()
    if not key:
        raise ValueError(f"unusable component name {name!r}")
    return key


@dataclass
class _Entry:
    """One registered component: its display name, factory and aliases."""

    name: str
    factory: Callable[..., Any]
    aliases: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)

    def signature(self) -> str:
        """Human-readable constructor signature of the factory."""
        try:
            return str(inspect.signature(self.factory))
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return "(...)"


class ComponentRegistry:
    """A name -> factory mapping with normalized keys and aliases.

    Parameters
    ----------
    kind:
        Human-readable component category ("progressive method",
        "weighting scheme", ...); used in every error message.
    loader:
        Optional zero-argument callable run once before the first lookup,
        typically importing the modules whose import side effect is the
        registration of the stock components.
    """

    def __init__(
        self, kind: str, loader: Callable[[], None] | None = None
    ) -> None:
        self.kind = kind
        self._loader = loader
        self._loaded = loader is None
        self._loading = False
        self._entries: dict[str, _Entry] = {}
        self._aliases: dict[str, str] = {}

    # -- population --------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._loaded or self._loading:
            return
        self._loading = True
        try:
            assert self._loader is not None
            self._loader()
            self._loaded = True
        finally:
            self._loading = False

    def register(
        self,
        name: str | None = None,
        factory: Callable[..., Any] | None = None,
        *,
        aliases: tuple[str, ...] | list[str] = (),
        **metadata: Any,
    ) -> Callable[..., Any]:
        """Register a component; usable directly or as a class decorator.

        ``name`` defaults to the factory's ``name`` class attribute (the
        convention every component family in this codebase follows), then
        to ``__name__``.  Re-registering a name overwrites the previous
        entry, which is what user extensions and tests want.

        Examples
        --------
        >>> registry = ComponentRegistry("demo component")
        >>> @registry.register("My-Comp", aliases=("mc",))
        ... class MyComp:
        ...     def __init__(self, knob=1):
        ...         self.knob = knob
        >>> registry.canonical("my_comp"), registry.canonical("MC")
        ('My-Comp', 'My-Comp')
        >>> registry.build("mycomp", knob=2).knob
        2
        """
        if factory is None and name is not None and not isinstance(name, str):
            # bare-decorator form: @registry.register (no parentheses)
            name, factory = None, name

        def _add(obj: Callable[..., Any]) -> Callable[..., Any]:
            display = name or getattr(obj, "name", None) or obj.__name__
            entry = _Entry(display, obj, tuple(aliases), dict(metadata))
            key = normalize(display)
            self._entries[key] = entry
            for alias in entry.aliases:
                self._aliases[normalize(alias)] = key
            return obj

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, name: str) -> None:
        """Drop a component (and any aliases pointing at it)."""
        key = self._resolve_key(name)
        del self._entries[key]
        self._aliases = {a: k for a, k in self._aliases.items() if k != key}

    # -- lookup ------------------------------------------------------------

    def _resolve_key(self, name: str) -> str:
        self._ensure_loaded()
        key = normalize(name)
        # Exact entries win over aliases, so registering a component whose
        # name collides with an existing alias makes it reachable.
        if key not in self._entries:
            key = self._aliases.get(key, key)
        if key not in self._entries:
            raise ValueError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            )
        return key

    def entry(self, name: str) -> _Entry:
        """The full registration record for ``name``."""
        return self._entries[self._resolve_key(name)]

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name`` (any spelling)."""
        return self.entry(name).factory

    def canonical(self, name: str) -> str:
        """The display spelling a component was registered under."""
        return self.entry(name).name

    def build(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate a component, surfacing its signature on bad kwargs."""
        entry = self.entry(name)
        try:
            return entry.factory(*args, **kwargs)
        except TypeError as exc:
            raise TypeError(
                f"cannot build {self.kind} {entry.name!r}: {exc}; "
                f"accepted signature: {entry.name}{entry.signature()}"
            ) from exc

    def accepts(self, name: str, parameter: str) -> bool:
        """Whether the constructor *declares* ``parameter`` by name.

        Deliberately False for a bare ``**kwargs`` catch-all: callers use
        this to decide whether to *inject* optional arguments (blocks,
        weighting, key_function), and a component that did not name the
        parameter should not silently receive it.
        """
        try:
            signature = inspect.signature(self.entry(name).factory)
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return False
        param = signature.parameters.get(parameter)
        return param is not None and param.kind is not inspect.Parameter.VAR_KEYWORD

    # -- introspection -----------------------------------------------------

    def names(self) -> list[str]:
        """Sorted canonical display names of all registered components."""
        self._ensure_loaded()
        return sorted(entry.name for entry in self._entries.values())

    def describe(self) -> dict[str, str]:
        """Canonical name -> constructor signature, for all components."""
        self._ensure_loaded()
        return {
            entry.name: f"{entry.name}{entry.signature()}"
            for key, entry in sorted(self._entries.items())
        }

    def __contains__(self, name: str) -> bool:
        try:
            self._resolve_key(name)
        except ValueError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentRegistry({self.kind!r}, {len(self._entries)} entries)"


# -- the stock registries ----------------------------------------------------
#
# The loaders import the modules whose import registers the built-in
# components; they run lazily so that this module never participates in an
# import cycle (it imports nothing from repro itself).


def _load_progressive_methods() -> None:
    import repro.incremental.online  # noqa: F401  (registers ONLINE)
    import repro.progressive  # noqa: F401  (registers the 7 methods)


def _load_blocking_schemes() -> None:
    import repro.blocking  # noqa: F401  (registers token/standard/suffix)


def _load_weighting_schemes() -> None:
    import repro.metablocking.weights  # noqa: F401  (registers ARCS..EJS)


def _load_pruning_algorithms() -> None:
    import repro.metablocking.pruning  # noqa: F401  (registers WEP..RCNP)


def _load_matchers() -> None:
    import repro.matching  # noqa: F401  (registers jaccard/edit/oracle)


def _load_backends() -> None:
    import repro.engine  # noqa: F401  (registers python/numpy backends)
    import repro.parallel.backend  # noqa: F401  (registers numpy-parallel)


progressive_methods = ComponentRegistry(
    "progressive method", loader=_load_progressive_methods
)
blocking_schemes = ComponentRegistry(
    "blocking scheme", loader=_load_blocking_schemes
)
weighting_schemes = ComponentRegistry(
    "weighting scheme", loader=_load_weighting_schemes
)
pruning_algorithms = ComponentRegistry(
    "pruning algorithm", loader=_load_pruning_algorithms
)
matchers = ComponentRegistry("match function", loader=_load_matchers)
backends = ComponentRegistry("backend", loader=_load_backends)

_REGISTRIES: dict[str, ComponentRegistry] = {
    "method": progressive_methods,
    "blocking": blocking_schemes,
    "weighting": weighting_schemes,
    "pruning": pruning_algorithms,
    "matcher": matchers,
    "backend": backends,
}


def get_registry(kind: str) -> ComponentRegistry:
    """The stock registry for ``kind`` (method/blocking/weighting/matcher)."""
    try:
        return _REGISTRIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown registry kind {kind!r}; available: {sorted(_REGISTRIES)}"
        ) from None
